"""Config-driven custom scenarios: a TOML file instead of a flag soup.

A scenario names a base experiment from the registry and layers custom
sweep parameters, a fault plan, execution settings and output artifacts
on top — the combinations the paper's methodology invites ("Figure 4a
under link degradation", "fig10 with a fail-slow node at 2 jobs")
without writing Python or a one-off shell pipeline.  ``repro run
--scenario my.toml`` feeds the same PointSpec machinery as the built-in
figures, so journaling, ``--resume`` and ``--jobs`` all work unchanged.

Format (all tables optional except ``[scenario]``)::

    [scenario]
    experiment = "fig4a"        # registry name (see `repro list`)
    spec = "henri"              # cluster preset
    fast = true                 # start from the --fast profile

    [params]                    # keyword overrides for the experiment
    core_counts = [0, 12, 35]   # validated against its signature
    reps = 4

    [topology]                  # cluster fabric (experiments accepting
    kind = "dragonfly"          # a `topology` parameter, e.g. fig_xapp)
    group_size = 8              # remaining keys: shape parameters

    [[apps]]                    # co-scheduled applications (experiments
    name = "victim"             # accepting an `apps` parameter); first
    pattern = "pingpong"        # app is the victim/probe
    nodes = [0, 8]

    [[apps]]
    name = "aggressor"
    pattern = "ring"
    nodes = [1, 2, 9, 10]
    size = 4194304

    [faults]
    specs = ["link:src=0,dst=1,bw_factor=0.5,start=0,duration=1"]
    seed = 0                    # fault randomness seed
    timeout = 0.0002            # transport retransmit timeout (s)
    max_retries = 8

    [execution]
    jobs = 2                    # worker processes (0 = cpu count)
    trials = 3                  # seeded trials per sweep point
    journal = "campaign.jsonl"  # checkpoint journal path
    resume = false
    point_timeout = 120.0       # wall-clock deadline per point (s)
    point_retries = 2           # retries after a crash/timeout
    keep_going = true           # degrade (vs abort) on exhaustion

    [output]
    report = "report.md"        # markdown record (like --out)
    trace = "trace.json"        # Chrome-tracing export
    metrics = "metrics.json"    # metrics registry export
    plot = false                # append ASCII charts

CLI flags override scenario values (``--jobs 4`` beats
``[execution] jobs``), so a scenario is a reproducible default, not a
cage.  Validation is strict: unknown tables, unknown keys, wrong types,
unknown experiments and parameters the experiment does not accept all
fail with a :class:`ScenarioError` naming the offending field.

Python 3.10 has no ``tomllib``; a deliberately small TOML-subset parser
(tables, ``[[...]]`` arrays of tables, strings, numbers, booleans, flat
arrays) covers the scenario schema there without adding a dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

__all__ = ["Scenario", "ScenarioError", "load_scenario", "parse_scenario"]


class ScenarioError(ValueError):
    """A scenario file failed validation; the message names the field."""


# ---------------------------------------------------------------------------
# TOML loading (tomllib on 3.11+, subset parser on 3.10)
# ---------------------------------------------------------------------------

def _parse_toml(text: str, source: str) -> Dict[str, object]:
    try:
        import tomllib
    except ModuleNotFoundError:
        return _parse_mini_toml(text, source)
    try:
        return tomllib.loads(text)
    except tomllib.TOMLDecodeError as err:
        raise ScenarioError(f"{source}: invalid TOML: {err}") from None


def _mini_value(raw: str, source: str, lineno: int) -> object:
    raw = raw.strip()
    if raw.startswith("[") and raw.endswith("]"):
        inner = raw[1:-1].strip()
        if not inner:
            return []
        return [_mini_value(part, source, lineno)
                for part in _split_array(inner, source, lineno)]
    if len(raw) >= 2 and raw[0] == raw[-1] and raw[0] in "\"'":
        return raw[1:-1]
    if raw in ("true", "false"):
        return raw == "true"
    try:
        cleaned = raw.replace("_", "")
        return float(cleaned) if any(c in cleaned for c in ".eE") \
            else int(cleaned, 0)
    except ValueError:
        raise ScenarioError(
            f"{source}:{lineno}: cannot parse value {raw!r} "
            f"(mini-TOML parser: strings, numbers, booleans and flat "
            f"arrays only)") from None


def _split_array(inner: str, source: str, lineno: int) -> List[str]:
    parts, depth, quote, cur = [], 0, "", []
    for ch in inner:
        if quote:
            cur.append(ch)
            if ch == quote:
                quote = ""
            continue
        if ch in "\"'":
            quote = ch
        elif ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        elif ch == "," and depth == 0:
            parts.append("".join(cur))
            cur = []
            continue
        cur.append(ch)
    if "".join(cur).strip():
        parts.append("".join(cur))
    return parts


def _parse_mini_toml(text: str, source: str) -> Dict[str, object]:
    """TOML subset: ``[table]`` headers + ``key = value`` lines."""
    doc: Dict[str, object] = {}
    table = doc
    for lineno, line in enumerate(text.splitlines(), 1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        if stripped.startswith("[["):
            if not stripped.endswith("]]"):
                raise ScenarioError(
                    f"{source}:{lineno}: malformed array-of-tables "
                    f"header {stripped!r}")
            name = stripped[2:-2].strip()
            entries = doc.setdefault(name, [])
            if not isinstance(entries, list):
                raise ScenarioError(
                    f"{source}:{lineno}: [[{name}]] conflicts with an "
                    f"earlier [{name}] table")
            table = {}
            entries.append(table)
            continue
        if stripped.startswith("["):
            if not stripped.endswith("]"):
                raise ScenarioError(
                    f"{source}:{lineno}: malformed table header "
                    f"{stripped!r}")
            name = stripped[1:-1].strip()
            existing = doc.setdefault(name, {})
            if not isinstance(existing, dict):
                raise ScenarioError(
                    f"{source}:{lineno}: [{name}] conflicts with an "
                    f"earlier [[{name}]] array of tables")
            table = existing
            continue
        if "=" not in stripped:
            raise ScenarioError(
                f"{source}:{lineno}: expected 'key = value', got "
                f"{stripped!r}")
        key, _, raw = stripped.partition("=")
        # Trailing comments only outside strings/arrays (keep it simple:
        # strip a ' #' tail when no quote follows it).
        if " #" in raw and "\"" not in raw.split(" #", 1)[1] \
                and "'" not in raw.split(" #", 1)[1]:
            raw = raw.split(" #", 1)[0]
        table[key.strip()] = _mini_value(raw, source, lineno)
    return doc


# ---------------------------------------------------------------------------
# Schema
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Scenario:
    """A validated scenario: base experiment + layered configuration."""

    name: str
    experiment: str
    spec: str = "henri"
    fast: bool = False
    params: Mapping[str, object] = field(default_factory=dict)
    fault_specs: Tuple[str, ...] = ()
    fault_seed: Optional[int] = None
    timeout: Optional[float] = None
    max_retries: Optional[int] = None
    jobs: Optional[int] = None
    trials: Optional[int] = None
    journal: Optional[str] = None
    resume: bool = False
    point_timeout: Optional[float] = None
    point_retries: Optional[int] = None
    keep_going: Optional[bool] = None
    report: Optional[str] = None
    trace: Optional[str] = None
    metrics: Optional[str] = None
    plot: bool = False

    def describe(self) -> str:
        bits = [f"experiment={self.experiment}", f"spec={self.spec}"]
        if self.fast:
            bits.append("fast")
        if self.params:
            bits.append(f"params={{{', '.join(sorted(self.params))}}}")
        if self.fault_specs:
            bits.append(f"faults={len(self.fault_specs)}")
        if self.jobs is not None:
            bits.append(f"jobs={self.jobs}")
        return f"scenario {self.name}: " + ", ".join(bits)


_SCHEMA: Dict[str, Dict[str, type | Tuple[type, ...]]] = {
    "scenario": {"name": str, "experiment": str, "spec": str,
                 "fast": bool, "title": str},
    "faults": {"specs": list, "seed": int, "timeout": (int, float),
               "max_retries": int},
    "execution": {"jobs": int, "trials": int, "journal": str,
                  "resume": bool, "point_timeout": (int, float),
                  "point_retries": int, "keep_going": bool},
    "output": {"report": str, "trace": str, "metrics": str, "plot": bool},
}


def _check_table(doc: Mapping[str, object], table: str,
                 source: str) -> Dict[str, object]:
    raw = doc.get(table, {})
    if not isinstance(raw, dict):
        raise ScenarioError(f"{source}: [{table}] must be a table, got "
                            f"{type(raw).__name__}")
    schema = _SCHEMA[table]
    for key, value in raw.items():
        if key not in schema:
            raise ScenarioError(
                f"{source}: unknown key {key!r} in [{table}]; valid keys: "
                f"{', '.join(sorted(schema))}")
        expected = schema[key]
        # bool is an int subclass; reject bools where ints are expected.
        if isinstance(value, bool) and expected is not bool:
            raise ScenarioError(
                f"{source}: [{table}] {key} must be "
                f"{getattr(expected, '__name__', 'number')}, got a boolean")
        if not isinstance(value, expected):
            name = expected.__name__ if isinstance(expected, type) \
                else "number"
            raise ScenarioError(
                f"{source}: [{table}] {key} must be {name}, got "
                f"{type(value).__name__} ({value!r})")
    return dict(raw)


def _validate_params(experiment: str, params: Mapping[str, object],
                     source: str) -> None:
    from repro.core import registry
    defn = registry.get(experiment)
    named, var_kw = defn.signature_params()
    # spec and journal are configured via [scenario]/[execution], not
    # [params]; passing them here would collide with the run() kwargs.
    reserved = ("spec", "journal")
    valid = [p for p in named if p not in reserved]
    for key in params:
        if key in reserved or (not var_kw and key not in named):
            raise ScenarioError(
                f"{source}: [params] {key!r} is not a parameter of "
                f"experiment {experiment!r}; valid parameters: "
                f"{', '.join(valid)}")


def _fold_topology(raw: object, source: str) -> Dict[str, object]:
    """``[topology]`` table -> ``topology``/``topology_params`` params.

    ::

        [topology]
        kind = "dragonfly"     # fullmesh | fattree | dragonfly | torus
        group_size = 8         # remaining keys are shape parameters

    Kind and parameter names are validated against the fabric catalog
    here, at parse time, so a typo fails before any point runs.
    """
    if raw is None:
        return {}
    if not isinstance(raw, dict):
        raise ScenarioError(
            f"{source}: [topology] must be a table, got "
            f"{type(raw).__name__}")
    table = dict(raw)
    kind = table.pop("kind", None)
    if not isinstance(kind, str):
        raise ScenarioError(
            f"{source}: [topology] needs kind = \"<name>\" "
            f"(fullmesh, fattree, dragonfly or torus)")
    from repro.hardware.fabric import validate_topology_params
    try:
        validate_topology_params(kind, table)
    except ValueError as err:
        raise ScenarioError(f"{source}: [topology]: {err}") from None
    out: Dict[str, object] = {"topology": kind}
    if table:
        out["topology_params"] = table
    return out


def _validate_apps(raw: object,
                   source: str) -> Optional[List[Dict[str, object]]]:
    """``[[apps]]`` tables -> the ``apps`` experiment parameter.

    Each table is validated by building an
    :class:`~repro.core.apps.AppSpec` (field names, pattern, placement
    arity), so malformed app declarations fail at parse time.
    """
    if raw is None:
        return None
    if not isinstance(raw, list) or not all(
            isinstance(entry, dict) for entry in raw):
        raise ScenarioError(
            f"{source}: apps must be declared as [[apps]] tables")
    from repro.core.apps import AppSpec
    out = []
    for i, entry in enumerate(raw):
        entry = dict(entry)
        if "nodes" in entry and isinstance(entry["nodes"], list):
            entry["nodes"] = tuple(entry["nodes"])
        try:
            AppSpec.from_dict(entry)
        except (TypeError, ValueError) as err:
            raise ScenarioError(
                f"{source}: [[apps]] entry {i}: {err}") from None
        entry["nodes"] = list(entry.get("nodes", ()))
        out.append(entry)
    return out


def _validate_faults(specs: List[object], source: str) -> Tuple[str, ...]:
    from repro.faults import parse_fault
    out = []
    for i, spec in enumerate(specs):
        if not isinstance(spec, str):
            raise ScenarioError(
                f"{source}: [faults] specs[{i}] must be a string fault "
                f"spec, got {type(spec).__name__}")
        try:
            parse_fault(spec)
        except ValueError as err:
            raise ScenarioError(
                f"{source}: [faults] specs[{i}] ({spec!r}): {err}"
                ) from None
        out.append(spec)
    return tuple(out)


def parse_scenario(text: str, source: str = "<scenario>") -> Scenario:
    """Parse + validate scenario TOML text into a :class:`Scenario`."""
    from repro.core import registry

    doc = _parse_toml(text, source)
    if not isinstance(doc, dict):
        raise ScenarioError(f"{source}: scenario must be a TOML document")
    unknown = [k for k in doc
               if k not in _SCHEMA and k not in ("params", "topology",
                                                 "apps")]
    if unknown:
        raise ScenarioError(
            f"{source}: unknown table(s) {', '.join(sorted(unknown))}; "
            f"valid tables: [scenario], [params], [topology], [[apps]], "
            f"[faults], [execution], [output]")

    scen = _check_table(doc, "scenario", source)
    if "experiment" not in scen:
        raise ScenarioError(
            f"{source}: [scenario] is missing the required key "
            f"'experiment' (see `repro list` for valid names)")
    experiment = scen["experiment"]
    try:
        registry.get(experiment)
    except registry.UnknownExperimentError as err:
        raise ScenarioError(f"{source}: [scenario] experiment: {err}"
                            ) from None

    params = doc.get("params", {})
    if not isinstance(params, dict):
        raise ScenarioError(f"{source}: [params] must be a table")
    params = dict(params)
    params.update(_fold_topology(doc.get("topology"), source))
    apps = _validate_apps(doc.get("apps"), source)
    if apps is not None:
        params["apps"] = apps
    _validate_params(experiment, params, source)

    faults = _check_table(doc, "faults", source)
    # Reliability knobs without fault specs are fine: like the CLI
    # flags, they imply the reliable transport with an empty plan.
    fault_specs = _validate_faults(faults.get("specs", []), source)

    execution = _check_table(doc, "execution", source)
    output = _check_table(doc, "output", source)
    if execution.get("resume") and not execution.get("journal"):
        raise ScenarioError(
            f"{source}: [execution] resume = true requires journal")

    point_timeout = execution.get("point_timeout")
    if point_timeout is not None and point_timeout <= 0:
        raise ScenarioError(
            f"{source}: [execution] point_timeout must be > 0, got "
            f"{point_timeout!r}")
    point_retries = execution.get("point_retries")
    if point_retries is not None and point_retries < 0:
        raise ScenarioError(
            f"{source}: [execution] point_retries must be >= 0, got "
            f"{point_retries!r}")
    trials = execution.get("trials")
    if trials is not None and trials < 1:
        raise ScenarioError(
            f"{source}: [execution] trials must be >= 1, got {trials!r}")

    name = scen.get("name") or experiment
    timeout = faults.get("timeout")
    return Scenario(
        name=name,
        experiment=experiment,
        spec=scen.get("spec", "henri"),
        fast=bool(scen.get("fast", False)),
        params=dict(params),
        fault_specs=fault_specs,
        fault_seed=faults.get("seed"),
        timeout=float(timeout) if timeout is not None else None,
        max_retries=faults.get("max_retries"),
        jobs=execution.get("jobs"),
        trials=trials,
        journal=execution.get("journal"),
        resume=bool(execution.get("resume", False)),
        point_timeout=float(point_timeout)
        if point_timeout is not None else None,
        point_retries=point_retries,
        keep_going=execution.get("keep_going"),
        report=output.get("report"),
        trace=output.get("trace"),
        metrics=output.get("metrics"),
        plot=bool(output.get("plot", False)),
    )


def load_scenario(path: str) -> Scenario:
    """Load and validate a scenario TOML file."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
    except OSError as err:
        raise ScenarioError(f"cannot read scenario {path}: {err}") from None
    return parse_scenario(text, source=path)
