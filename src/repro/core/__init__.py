"""The paper's contribution: the interference benchmark suite.

* :mod:`repro.core.results` — series/result containers with the paper's
  median + decile-band statistics.
* :mod:`repro.core.placement` — near/far-NIC placements for the
  communication thread, the data, and the computing threads (§4.3).
* :mod:`repro.core.sidebyside` — the §2.1 three-step protocol:
  computation alone, communication alone, both side by side, with both
  throughput-style (STREAM) and fixed-work (prime/AVX) computations.
* :mod:`repro.core.experiments` — one entry point per paper figure and
  table (``fig1a`` … ``fig10``), each returning an
  :class:`~repro.core.results.ExperimentResult`.
* :mod:`repro.core.report` — ASCII rendering and EXPERIMENTS.md
  generation.
"""

from repro.core.results import Series, ExperimentResult
from repro.core.placement import (
    Placement, compute_core_ids, comm_core_for, data_numa_for,
)
from repro.core.sidebyside import (
    SideBySideConfig, ThroughputOutcome, DurationOutcome,
    run_throughput_protocol, run_duration_protocol,
)
from repro.core import experiments
from repro.core.report import render_table, render_experiment, write_experiments_md

__all__ = [
    "Series", "ExperimentResult",
    "Placement", "compute_core_ids", "comm_core_for", "data_numa_for",
    "SideBySideConfig", "ThroughputOutcome", "DurationOutcome",
    "run_throughput_protocol", "run_duration_protocol",
    "experiments",
    "render_table", "render_experiment", "write_experiments_md",
]
