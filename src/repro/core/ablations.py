"""Ablation studies: turn individual interference mechanisms off.

DESIGN.md names four modelling mechanisms as the load-bearing pieces of
the reproduction.  Each ablation disables exactly one of them and
re-runs the experiment whose shape depends on it, quantifying how much
of the paper's effect that mechanism carries:

* ``no_pio_colocation``  — zero the PIO co-location penalty → Figure 4a's
  latency doubling disappears.
* ``no_dma_derating``    — make the NIC's DMA engines insensitive to
  memory latency → Figure 4b's early (3-core) bandwidth onset moves to
  the point where the max-min share binds.
* ``no_dma_priority``    — give DMA flows weight 1 (just another core) →
  the asymptotic bandwidth under full contention collapses far below the
  paper's ~1/3.
* ``no_stack_stall``     — keep the runtime's software stack immune to
  memory pressure → CG's §6 sending-bandwidth collapse shrinks towards
  GEMM's.
* ``no_scheduler_locality`` — locality-blind eager list → GEMM's memory
  stalls inflate (every other access crosses a socket).

Each function returns ``(baseline, ablated)`` result pairs so callers
(benchmarks, the CLI) can report the delta.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence, Tuple

from repro.core import experiments as E
from repro.core.registry import experiment
from repro.core.results import ExperimentResult
from repro.hardware.presets import ContentionSpec, MachineSpec, get_preset

__all__ = [
    "ablate_pio_colocation", "ablate_dma_derating", "ablate_dma_priority",
    "ablate_stack_stall", "ablate_scheduler_locality", "ALL_ABLATIONS",
]

_CORES = [0, 3, 5, 12, 20, 26, 31, 35]


def _spec(spec: MachineSpec | str) -> MachineSpec:
    return get_preset(spec) if isinstance(spec, str) else spec


def ablate_pio_colocation(spec: MachineSpec | str = "henri",
                          core_counts: Optional[Sequence[int]] = None,
                          reps: int = 6
                          ) -> Tuple[ExperimentResult, ExperimentResult]:
    """Figure 4a with and without the PIO co-location penalty."""
    base_spec = _spec(spec)
    counts = list(core_counts) if core_counts is not None else _CORES
    baseline = E.fig4a(spec=base_spec, core_counts=counts, reps=reps)
    no_penalty = base_spec.with_overrides(
        contention=ContentionSpec(mc_coef=0.0, link_coef=0.0))
    ablated = E.fig4a(spec=no_penalty, core_counts=counts, reps=reps)
    ablated.name = "fig4a_no_pio_colocation"
    return baseline, ablated


def ablate_dma_derating(spec: MachineSpec | str = "henri",
                        core_counts: Optional[Sequence[int]] = None,
                        reps: int = 4
                        ) -> Tuple[ExperimentResult, ExperimentResult]:
    """Figure 4b with and without the DMA latency-sensitivity de-rating."""
    base_spec = _spec(spec)
    counts = list(core_counts) if core_counts is not None else _CORES
    baseline = E.fig4b(spec=base_spec, core_counts=counts, reps=reps)
    no_derate = base_spec.with_overrides(
        nic=dataclasses.replace(base_spec.nic, dma_eff_gamma=0.0))
    ablated = E.fig4b(spec=no_derate, core_counts=counts, reps=reps)
    ablated.name = "fig4b_no_dma_derating"
    return baseline, ablated


def ablate_dma_priority(spec: MachineSpec | str = "henri",
                        core_counts: Optional[Sequence[int]] = None,
                        reps: int = 4
                        ) -> Tuple[ExperimentResult, ExperimentResult]:
    """Figure 4b with the NIC arbitrating like just another core."""
    base_spec = _spec(spec)
    counts = list(core_counts) if core_counts is not None else _CORES
    baseline = E.fig4b(spec=base_spec, core_counts=counts, reps=reps)
    plain = base_spec.with_overrides(
        nic=dataclasses.replace(base_spec.nic, dma_weight=1.0))
    ablated = E.fig4b(spec=plain, core_counts=counts, reps=reps)
    ablated.name = "fig4b_no_dma_priority"
    return baseline, ablated


def ablate_stack_stall(worker_counts: Sequence[int] = (1, 16, 34),
                       cg_kwargs: Optional[dict] = None) -> Dict[str, dict]:
    """§6 CG sending-bandwidth loss with and without stack stalling."""
    from repro.runtime.apps import run_cg
    from repro.runtime.runtime import RuntimeSpec, runtime_spec_for
    from repro.hardware.presets import HENRI

    cg_kwargs = dict(cg_kwargs or {})
    base_rt = runtime_spec_for(HENRI)
    no_stall = dataclasses.replace(base_rt, stack_stall_k=0.0)

    out: Dict[str, dict] = {"baseline": {}, "ablated": {}}
    for nw in worker_counts:
        out["baseline"][nw] = run_cg(n_workers=nw, **cg_kwargs)
        # Patch the spec via a custom runtime build: run_cg constructs
        # RuntimeSystems internally, so go through a spec override.
        out["ablated"][nw] = _run_cg_with_spec(no_stall, nw, cg_kwargs)
    return out


def _run_cg_with_spec(rt_spec, n_workers, cg_kwargs):
    """run_cg with an explicit RuntimeSpec (helper for the ablation)."""
    from repro.hardware.topology import Cluster
    from repro.mpi.comm import CommWorld
    from repro.runtime.apps import cg as cg_mod
    from repro.runtime.mpi_layer import RuntimeComm
    from repro.runtime.runtime import RuntimeSystem
    import numpy as np

    n = cg_kwargs.get("n", 120_000)
    iterations = cg_kwargs.get("iterations", 3)
    machine_spec = get_preset("henri")
    tile_rows = cg_kwargs.get(
        "tile_rows") or max(200, (n // 2) // (2 * machine_spec.n_cores))
    cluster = Cluster(machine_spec, n_nodes=2, seed=0)
    world = CommWorld(cluster, comm_placement="far")
    runtimes = {r: RuntimeSystem(world, r, n_workers=n_workers,
                                 spec=rt_spec) for r in (0, 1)}
    comm = RuntimeComm(world, runtimes)
    for rt in runtimes.values():
        rt.start()
    data = {r: cg_mod._build_rank_data(cluster.machine(r), r, n, tile_rows)
            for r in (0, 1)}
    t0 = cluster.sim.now
    drivers = [cluster.sim.process(
        cg_mod._driver(r, 1 - r, runtimes[r], comm, data[r], n, tile_rows,
                       iterations)) for r in (0, 1)]
    cluster.sim.run()
    for d in drivers:
        if not d.ok:  # pragma: no cover
            _ = d.value
    duration = cluster.sim.now - t0
    for rt in runtimes.values():
        rt.shutdown()
    cluster.sim.run()
    return cg_mod.CGResult(
        n=n, iterations=iterations, n_workers=n_workers,
        duration=duration, sending_bandwidth=comm.sending_bandwidth(),
        stall_fraction=0.0, bytes_sent=0.0, messages=0)


def ablate_scheduler_locality(n_workers: int = 34,
                              gemm_kwargs: Optional[dict] = None
                              ) -> Dict[str, object]:
    """GEMM stalls with the locality-aware vs locality-blind scheduler."""
    import repro.runtime.scheduler as sched_mod
    from repro.runtime.apps import run_gemm

    gemm_kwargs = dict(gemm_kwargs or {})
    baseline = run_gemm(n_workers=n_workers, **gemm_kwargs)

    original = sched_mod.EagerScheduler.__init__

    def blind_init(self, polling=None, machine=None, locality=True,
                   locality_window=16):
        original(self, polling=polling, machine=machine, locality=False,
                 locality_window=locality_window)

    sched_mod.EagerScheduler.__init__ = blind_init
    try:
        ablated = run_gemm(n_workers=n_workers, **gemm_kwargs)
    finally:
        sched_mod.EagerScheduler.__init__ = original
    return {"baseline": baseline, "ablated": ablated}


ALL_ABLATIONS = {
    "no_pio_colocation": ablate_pio_colocation,
    "no_dma_derating": ablate_dma_derating,
    "no_dma_priority": ablate_dma_priority,
    "no_stack_stall": ablate_stack_stall,
    "no_scheduler_locality": ablate_scheduler_locality,
}


# ---------------------------------------------------------------------------
# Registered wrapper experiments
# ---------------------------------------------------------------------------
# Each ablation above returns raw pairs/dicts; the wrappers below fold
# them into a single ExperimentResult (baseline_* / ablated_* series plus
# delta observations) so ablations run, render and scenario-compose like
# any other experiment.  They carry the ``ablation`` tag and stay out of
# ``repro run all``.

def _combined(name: str, title: str, baseline: ExperimentResult,
              ablated: ExperimentResult) -> ExperimentResult:
    """Merge a (baseline, ablated) result pair into one comparable result."""
    result = ExperimentResult(name=name, title=title)
    for variant, res in (("baseline", baseline), ("ablated", ablated)):
        for key, s in res.series.items():
            dst = result.new_series(f"{variant}_{key}",
                                    xlabel=s.xlabel, ylabel=s.ylabel)
            dst.x = list(s.x)
            dst.median = list(s.median)
            dst.p10 = list(s.p10)
            dst.p90 = list(s.p90)
        for key, value in res.observations.items():
            result.observe(f"{variant}_{key}", value)
        result.failures.update(res.failures)
    return result


def _require_henri(name: str, spec: MachineSpec | str) -> None:
    """The runtime ablations drive run_cg/run_gemm on henri only."""
    if not (spec == "henri" or
            (isinstance(spec, MachineSpec) and spec.name == "henri")):
        raise ValueError(f"ablation {name!r} only models the henri "
                         f"machine (got spec={spec!r})")


@experiment(name="no_pio_colocation",
            title="Ablation: PIO co-location penalty off (Figure 4a)",
            tags=("ablation", "contention"), in_all=False, plot=False,
            fast=dict(core_counts=[0, 12, 20, 35], reps=3))
def no_pio_colocation_experiment(spec: MachineSpec | str = "henri",
                                 core_counts: Optional[Sequence[int]] = None,
                                 reps: int = 6) -> ExperimentResult:
    """Figure 4a's latency doubling with the PIO penalty zeroed."""
    baseline, ablated = ablate_pio_colocation(spec=spec,
                                              core_counts=core_counts,
                                              reps=reps)
    return _combined("no_pio_colocation",
                     "Ablation: PIO co-location penalty off (Figure 4a)",
                     baseline, ablated)


@experiment(name="no_dma_derating",
            title="Ablation: DMA latency de-rating off (Figure 4b)",
            tags=("ablation", "contention"), in_all=False, plot=False,
            fast=dict(core_counts=[0, 12, 20, 35], reps=3))
def no_dma_derating_experiment(spec: MachineSpec | str = "henri",
                               core_counts: Optional[Sequence[int]] = None,
                               reps: int = 4) -> ExperimentResult:
    """Figure 4b's early bandwidth onset with DMA de-rating disabled."""
    baseline, ablated = ablate_dma_derating(spec=spec,
                                            core_counts=core_counts,
                                            reps=reps)
    return _combined("no_dma_derating",
                     "Ablation: DMA latency de-rating off (Figure 4b)",
                     baseline, ablated)


@experiment(name="no_dma_priority",
            title="Ablation: NIC DMA priority off (Figure 4b)",
            tags=("ablation", "contention"), in_all=False, plot=False,
            fast=dict(core_counts=[0, 12, 20, 35], reps=3))
def no_dma_priority_experiment(spec: MachineSpec | str = "henri",
                               core_counts: Optional[Sequence[int]] = None,
                               reps: int = 4) -> ExperimentResult:
    """Figure 4b's asymptote with the NIC arbitrating like a core."""
    baseline, ablated = ablate_dma_priority(spec=spec,
                                            core_counts=core_counts,
                                            reps=reps)
    return _combined("no_dma_priority",
                     "Ablation: NIC DMA priority off (Figure 4b)",
                     baseline, ablated)


@experiment(name="no_stack_stall",
            title="Ablation: runtime stack stalling off (CG, §6)",
            tags=("ablation", "runtime"), in_all=False, plot=False,
            fast=dict(worker_counts=(1, 16), n=30_000, iterations=2))
def no_stack_stall_experiment(spec: MachineSpec | str = "henri",
                              worker_counts: Sequence[int] = (1, 16, 34),
                              n: int = 120_000,
                              iterations: int = 3) -> ExperimentResult:
    """CG's sending-bandwidth collapse with stack stalling disabled."""
    _require_henri("no_stack_stall", spec)
    out = ablate_stack_stall(worker_counts=worker_counts,
                             cg_kwargs=dict(n=n, iterations=iterations))
    result = ExperimentResult(
        name="no_stack_stall",
        title="Ablation: runtime stack stalling off (CG, §6)")
    for variant in ("baseline", "ablated"):
        bw = result.new_series(f"{variant}_sending_bw", xlabel="workers",
                               ylabel="bytes/s")
        for nw, cg in out[variant].items():
            bw.add_value(nw, cg.sending_bandwidth)
    base = result["baseline_sending_bw"]
    abl = result["ablated_sending_bw"]
    result.observe("baseline_bw_retained", min(base.median) / max(base.median))
    result.observe("ablated_bw_retained", min(abl.median) / max(abl.median))
    return result


@experiment(name="no_scheduler_locality",
            title="Ablation: locality-blind task scheduler (GEMM, §6)",
            tags=("ablation", "runtime"), in_all=False, plot=False,
            fast=dict(n_workers=8, n=1024))
def no_scheduler_locality_experiment(spec: MachineSpec | str = "henri",
                                     n_workers: int = 34,
                                     n: int = 4096,
                                     tile: int = 128) -> ExperimentResult:
    """GEMM memory stalls with the locality-aware scheduler blinded."""
    _require_henri("no_scheduler_locality", spec)
    out = ablate_scheduler_locality(n_workers=n_workers,
                                    gemm_kwargs=dict(n=n, tile=tile))
    result = ExperimentResult(
        name="no_scheduler_locality",
        title="Ablation: locality-blind task scheduler (GEMM, §6)")
    stalls = result.new_series("stall_fraction", xlabel="variant",
                               ylabel="fraction")
    duration = result.new_series("duration", xlabel="variant", ylabel="s")
    for i, variant in enumerate(("baseline", "ablated")):
        gemm = out[variant]
        stalls.add_value(i, gemm.stall_fraction)
        duration.add_value(i, gemm.duration)
        result.observe(f"{variant}_stall_fraction", gemm.stall_fraction)
        result.observe(f"{variant}_duration", gemm.duration)
    if out["baseline"].duration > 0:
        result.observe("slowdown",
                       out["ablated"].duration / out["baseline"].duration)
    return result
