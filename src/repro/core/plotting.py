"""Terminal plotting: render experiment series as ASCII charts.

The repository has no plotting dependency; this module draws the
figures' curves directly in the terminal so ``python -m repro run
fig4b --plot`` shows the shape the paper plots, decile band included.

The renderer supports linear and log axes (message-size sweeps are
log-x), multiple series with distinct glyphs, and a legend.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.report import format_si
from repro.core.results import ExperimentResult, Series

__all__ = ["ascii_plot", "plot_experiment"]

_GLYPHS = "ox+*#@%&"


def _transform(value: float, log: bool) -> float:
    if log:
        return math.log10(max(value, 1e-300))
    return value


def _scale(values: Sequence[float], log: bool,
           span: int) -> Tuple[float, float]:
    tvals = [_transform(v, log) for v in values]
    lo, hi = min(tvals), max(tvals)
    if hi - lo < 1e-12:
        hi = lo + 1.0
    return lo, (hi - lo) / max(1, span)


def ascii_plot(series_list: Iterable[Series], width: int = 64,
               height: int = 16, log_x: bool = False,
               log_y: bool = False,
               title: str = "") -> str:
    """Render one or more series into an ASCII chart."""
    series_list = [s for s in series_list if len(s) > 0]
    if not series_list:
        return "(no data)\n"
    xs_all = [x for s in series_list for x in s.x]
    ys_all = [y for s in series_list for y in s.median]
    if log_x and min(xs_all) <= 0:
        log_x = False
    if log_y and min(ys_all) <= 0:
        log_y = False
    x0, xstep = _scale(xs_all, log_x, width - 1)
    y0, ystep = _scale(ys_all, log_y, height - 1)

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for idx, series in enumerate(series_list):
        glyph = _GLYPHS[idx % len(_GLYPHS)]
        prev: Optional[Tuple[int, int]] = None
        for x, y in zip(series.x, series.median):
            col = round((_transform(x, log_x) - x0) / xstep)
            row = round((_transform(y, log_y) - y0) / ystep)
            col = min(width - 1, max(0, col))
            row = min(height - 1, max(0, row))
            grid[height - 1 - row][col] = glyph
            if prev is not None:
                # Sparse connecting dots along the segment.
                pc, pr = prev
                steps = max(abs(col - pc), abs(row - pr))
                for t in range(1, steps):
                    ic = pc + (col - pc) * t // steps
                    ir = pr + (row - pr) * t // steps
                    if grid[height - 1 - ir][ic] == " ":
                        grid[height - 1 - ir][ic] = "."
            prev = (col, row)

    y_hi = y0 + ystep * (height - 1)
    lines = []
    if title:
        lines.append(title)
    label_hi = format_si(10 ** y_hi if log_y else y_hi)
    label_lo = format_si(10 ** y0 if log_y else y0)
    margin = max(len(label_hi), len(label_lo)) + 1
    for r, row_cells in enumerate(grid):
        label = label_hi if r == 0 else (
            label_lo if r == height - 1 else "")
        lines.append(f"{label.rjust(margin)}|{''.join(row_cells)}")
    x_hi = x0 + xstep * (width - 1)
    left = format_si(10 ** x0 if log_x else x0)
    right = format_si(10 ** x_hi if log_x else x_hi)
    axis = f"{' ' * margin}+{'-' * width}"
    lines.append(axis)
    lines.append(f"{' ' * margin} {left}{' ' * max(1, width - len(left) - len(right))}{right}")
    legend = "   ".join(f"{_GLYPHS[i % len(_GLYPHS)]} {s.label}"
                        for i, s in enumerate(series_list))
    lines.append(f"{' ' * margin} {legend}")
    return "\n".join(lines) + "\n"


def plot_experiment(result: ExperimentResult,
                    keys: Optional[Sequence[str]] = None,
                    width: int = 64, height: int = 16) -> str:
    """Plot an experiment's main series (auto log-x for size sweeps)."""
    if keys is None:
        keys = [k for k in sorted(result.series)
                if not k.endswith("_bw") or
                all(not k2.endswith("_bw") for k2 in result.series)]
        keys = keys[:4]
    series = [result.series[k] for k in keys if k in result.series]
    xs = [x for s in series for x in s.x]
    log_x = bool(xs) and min(xs) > 0 and max(xs) / max(min(xs), 1e-300) > 500
    return ascii_plot(series, width=width, height=height, log_x=log_x,
                      title=f"{result.name}: {result.title}")
