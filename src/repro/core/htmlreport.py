"""Self-contained HTML campaign reports: the rendered successor to the
markdown record.

``repro report <journal> [--compare other] -o report.html`` renders one
campaign journal (typically multi-trial, see ``--trials``) into a
single HTML file with no external assets: inline CSS, hand-rolled SVG
charts.  Per figure series it shows

* a chart with one marker per sweep point and a **bootstrap-CI error
  bar** (``class="ci-bar"``) per marker, computed over the per-trial
  medians by :meth:`~repro.analysis.stats.TrialSet.ci`;
* a table of the same numbers (median, CI bounds, trial count);

plus a paper-vs-measured table (claims from
:data:`~repro.core.record.PAPER_CLAIMS` matched against the journal's
experiments), a Mann-Whitney comparison section when ``--compare``
names a second journal, a Fig-10-style attribution trend derived from
the journaled per-point metric deltas, aggregated campaign metrics
(histogram p50/p95/p99 included) and a failure/`[hole]` listing.

Everything is deterministic: two renders of the same journal(s) are
byte-identical (no wall clock, no randomness beyond the seeded
bootstrap).
"""

from __future__ import annotations

import html
import math
from html.parser import HTMLParser
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.stats import CampaignResults, Comparison, TrialSet
from repro.core.report import format_si

__all__ = ["render_html_report", "write_html_report",
           "validate_html_report"]

_CSS = """
body { font-family: system-ui, sans-serif; margin: 2em auto;
       max-width: 72em; color: #1c2733; }
h1 { border-bottom: 2px solid #356; padding-bottom: .2em; }
h2 { margin-top: 2em; color: #356; }
h3 { margin-bottom: .3em; }
table { border-collapse: collapse; margin: .6em 0; font-size: .92em; }
th, td { border: 1px solid #c9d4de; padding: .25em .6em;
         text-align: right; }
th { background: #eef3f7; }
td.l, th.l { text-align: left; }
tr.sig td { background: #fff3d6; }
tr.hole td { background: #fde8e8; }
.summary { color: #567; }
.chart-grid { display: flex; flex-wrap: wrap; gap: 1em; }
figure { margin: 0; border: 1px solid #c9d4de; padding: .5em;
         border-radius: 4px; }
figcaption { font-size: .85em; color: #567; text-align: center; }
.note { color: #789; font-style: italic; }
"""

_SERIES_COLOR = "#2b6cb0"


def _esc(text: object) -> str:
    return html.escape(str(text), quote=True)


# ---------------------------------------------------------------------------
# SVG chart with CI error bars
# ---------------------------------------------------------------------------

def _axis_pos(values: Sequence[float], span: float, pad: float,
              log: bool) -> List[float]:
    vals = [math.log10(v) if log else v for v in values]
    lo, hi = min(vals), max(vals)
    if hi <= lo:
        hi = lo + 1.0
    return [pad + (v - lo) / (hi - lo) * (span - 2 * pad) for v in vals]


def _svg_series_chart(label: str, points: List[TrialSet],
                      width: int = 440, height: int = 220) -> str:
    """One series as an inline SVG: median line + CI whiskers."""
    pts = [(ts.x, ts.median, *ts.ci()) for ts in points]
    xs = [p[0] for p in pts]
    log_x = all(x > 0 for x in xs) and len(set(xs)) > 1 \
        and max(xs) / min(xs) >= 100
    pad = 34
    px = _axis_pos(xs, width, pad, log_x)
    y_lo = min(min(p[2], p[1]) for p in pts)
    y_hi = max(max(p[3], p[1]) for p in pts)
    if y_hi <= y_lo:
        y_hi = y_lo + (abs(y_lo) or 1.0)
    margin = (y_hi - y_lo) * 0.08

    def ypos(v: float) -> float:
        frac = (v - y_lo + margin) / (y_hi - y_lo + 2 * margin)
        return height - pad - frac * (height - 2 * pad)

    parts = [f'<svg class="series-chart" role="img" '
             f'viewBox="0 0 {width} {height}" width="{width}" '
             f'height="{height}">',
             f'<rect x="0" y="0" width="{width}" height="{height}" '
             f'fill="#ffffff" stroke="#c9d4de"/>']
    # Axes annotations: min/max of both axes (SI-formatted).
    parts.append(
        f'<text x="{pad}" y="{height - 6}" font-size="10" '
        f'fill="#567">{_esc(format_si(min(xs)))}</text>')
    parts.append(
        f'<text x="{width - pad}" y="{height - 6}" font-size="10" '
        f'text-anchor="end" fill="#567">{_esc(format_si(max(xs)))}'
        f'{" (log)" if log_x else ""}</text>')
    parts.append(
        f'<text x="4" y="{pad}" font-size="10" fill="#567">'
        f'{_esc(format_si(y_hi))}</text>')
    parts.append(
        f'<text x="4" y="{height - pad}" font-size="10" fill="#567">'
        f'{_esc(format_si(y_lo))}</text>')
    # Median polyline.
    if len(pts) > 1:
        poly = " ".join(f"{x:.1f},{ypos(p[1]):.1f}"
                        for x, p in zip(px, pts))
        parts.append(f'<polyline points="{poly}" fill="none" '
                     f'stroke="{_SERIES_COLOR}" stroke-width="1.5"/>')
    # CI whiskers + markers.
    for x, (_, med, lo, hi) in zip(px, pts):
        y1, y2 = ypos(hi), ypos(lo)
        parts.append(
            f'<g class="ci-bar">'
            f'<line x1="{x:.1f}" y1="{y1:.1f}" x2="{x:.1f}" '
            f'y2="{y2:.1f}" stroke="{_SERIES_COLOR}" stroke-width="1"/>'
            f'<line x1="{x - 3:.1f}" y1="{y1:.1f}" x2="{x + 3:.1f}" '
            f'y2="{y1:.1f}" stroke="{_SERIES_COLOR}" stroke-width="1"/>'
            f'<line x1="{x - 3:.1f}" y1="{y2:.1f}" x2="{x + 3:.1f}" '
            f'y2="{y2:.1f}" stroke="{_SERIES_COLOR}" stroke-width="1"/>'
            f'</g>')
        parts.append(f'<circle cx="{x:.1f}" cy="{ypos(med):.1f}" r="2.5" '
                     f'fill="{_SERIES_COLOR}"/>')
    parts.append('</svg>')
    return "".join(parts)


# ---------------------------------------------------------------------------
# Sections
# ---------------------------------------------------------------------------

def _series_section(results: CampaignResults) -> List[str]:
    out: List[str] = []
    for experiment in results.experiments():
        out.append(f"<h2>Experiment {_esc(experiment)}</h2>")
        trials = results.trials(experiment)
        out.append(f'<p class="summary">{trials} trial(s) per point; '
                   f'error bars are 95% bootstrap CIs over the '
                   f'per-trial medians'
                   f'{" (decile band at a single trial)" if trials == 1 else ""}.'
                   f'</p>')
        series = results.series_points(experiment)
        out.append('<div class="chart-grid">')
        for label, points in series.items():
            out.append("<figure>")
            out.append(_svg_series_chart(label, points))
            out.append(f"<figcaption>{_esc(label)}</figcaption>")
            out.append("</figure>")
        out.append("</div>")
        for label, points in series.items():
            out.append(f"<h3>{_esc(label)}</h3>")
            out.append('<table class="series">')
            out.append("<tr><th>x</th><th>median</th><th>CI lo</th>"
                       "<th>CI hi</th><th>trials</th></tr>")
            for ts in points:
                lo, hi = ts.ci()
                out.append(
                    f"<tr><td>{_esc(format_si(ts.x))}</td>"
                    f"<td>{_esc(format_si(ts.median))}</td>"
                    f"<td>{_esc(format_si(lo))}</td>"
                    f"<td>{_esc(format_si(hi))}</td>"
                    f"<td>{ts.n}</td></tr>")
            out.append("</table>")
    return out


def _matched_claims(experiments: List[str]) -> List[Tuple[str, str, str]]:
    """(figure, claim, journal experiment) for claims whose figure id
    matches a journal experiment (by prefix either way: the fig1a/fig1b
    entry points journal under the shared sweep name ``fig1``)."""
    from repro.core.record import PAPER_CLAIMS
    out = []
    for fig, claim, _extract in PAPER_CLAIMS:
        for exp in experiments:
            if fig == exp or fig.startswith(exp) or exp.startswith(fig):
                out.append((fig, claim, exp))
                break
    return out


def _measured_summary(results: CampaignResults, experiment: str) -> str:
    """Compact journal-derived summary: first→last median per series."""
    bits = []
    for label, points in results.series_points(experiment).items():
        if not points:
            continue
        first, last = points[0], points[-1]
        if len(points) == 1:
            bits.append(f"{label}: {format_si(first.median)}")
        else:
            bits.append(f"{label}: {format_si(first.median)} → "
                        f"{format_si(last.median)}")
    return "; ".join(bits) if bits else "no completed points"


def _paper_section(results: CampaignResults) -> List[str]:
    out = ["<h2>Paper vs. measured</h2>"]
    matched = _matched_claims(results.experiments())
    if not matched:
        out.append('<p class="note">No paper claim matches the '
                   'experiments in this journal.</p>')
        out.append('<table id="paper-vs-measured">'
                   '<tr><th class="l">Figure</th>'
                   '<th class="l">Paper claim</th>'
                   '<th class="l">Measured (this campaign)</th></tr>'
                   '</table>')
        return out
    out.append('<p class="summary">Measured values are re-derived from '
               'this journal\'s trial records (median over trials, '
               'series first → last sweep point); the full observation '
               'extraction lives in EXPERIMENTS.md.</p>')
    out.append('<table id="paper-vs-measured">')
    out.append('<tr><th class="l">Figure</th><th class="l">Paper claim'
               '</th><th class="l">Measured (this campaign)</th></tr>')
    for fig, claim, exp in matched:
        out.append(f'<tr><td class="l">{_esc(fig)}</td>'
                   f'<td class="l">{_esc(claim)}</td>'
                   f'<td class="l">{_esc(_measured_summary(results, exp))}'
                   f'</td></tr>')
    out.append("</table>")
    return out


def _compare_section(comparisons: List[Comparison], other_name: str,
                     alpha: float = 0.05) -> List[str]:
    out = [f"<h2>Comparison vs. {_esc(other_name)}</h2>"]
    if not comparisons:
        out.append('<p class="note">No common (experiment, series, x) '
                   'points between the two journals.</p>')
        return out
    n_sig = sum(c.test.significant(alpha) for c in comparisons)
    out.append(f'<p class="summary">Two-sided Mann-Whitney U per sweep '
               f'point over the per-trial medians; rows at '
               f'p &lt; {alpha:g} are highlighted '
               f'({n_sig}/{len(comparisons)} significant).  A12 is the '
               f'Vargha-Delaney effect size (0.5 = no effect).</p>')
    out.append('<table id="comparison">')
    out.append('<tr><th class="l">experiment</th><th class="l">series'
               '</th><th>x</th><th>median A</th><th>median B</th>'
               '<th>Δ%</th><th>U</th><th>p</th><th>A12</th>'
               '<th class="l">sig.</th></tr>')
    for c in comparisons:
        sig = c.test.significant(alpha)
        delta = "-" if c.delta_pct is None else f"{c.delta_pct:+.1f}%"
        out.append(
            f'<tr{" class=" + chr(34) + "sig" + chr(34) if sig else ""}>'
            f'<td class="l">{_esc(c.experiment)}</td>'
            f'<td class="l">{_esc(c.series)}</td>'
            f'<td>{_esc(format_si(c.x))}</td>'
            f'<td>{_esc(format_si(c.median_a))}</td>'
            f'<td>{_esc(format_si(c.median_b))}</td>'
            f'<td>{_esc(delta)}</td>'
            f'<td>{c.test.u:g}</td>'
            f'<td>{c.test.p_value:.3f}</td>'
            f'<td>{c.test.effect_size:.2f}</td>'
            f'<td class="l">{"*" if sig else ""}</td></tr>')
    out.append("</table>")
    return out


def _point_interference(metrics: dict) -> Optional[Tuple[float, float]]:
    """(stall fraction, mean bandwidth B/s) from one point's metric
    delta, or None when the point carried no usable telemetry."""
    from repro.obs.metrics import parse_metric_key
    stall = busy = sent = dur = 0.0
    for key, entry in metrics.items():
        name, _labels = parse_metric_key(key)
        value = entry.get("value")
        if name == "runtime.stall_seconds":
            stall += value
        elif name == "runtime.busy_seconds":
            busy += value
        elif name == "net.bytes":
            sent += value
        elif name == "net.transfer_seconds" \
                and isinstance(value, dict):
            dur += value.get("sum", 0.0)
    if busy <= 0 or dur <= 0 or sent <= 0:
        return None
    return (stall / busy, sent / dur)


def _attribution_section(results: CampaignResults) -> List[str]:
    out = ['<h2 id="attribution-trend">Attribution trend (Fig 10)</h2>']
    samples: List[Tuple[str, float, float]] = []
    for entry, metrics in results.point_metrics():
        point = _point_interference(metrics)
        if point is None:
            continue
        trial = int(entry.get("trial", 0))
        key = entry["key"] if not trial else f"{entry['key']}#t{trial}"
        samples.append((f"{entry['experiment']}/{key}", *point))
    if len(samples) < 2:
        if results.point_metrics():
            out.append('<p class="note">The journaled metrics carry no '
                       'compute+communication overlap (needs busy/stall '
                       'and transfer counters from an overlap-style '
                       'experiment, e.g. fig10).</p>')
        else:
            out.append('<p class="note">No per-point metric deltas in '
                       'this journal (run the campaign with --metrics '
                       'to record them).</p>')
        return out
    from repro.obs.attribution import _pearson
    corr = _pearson([s[1] for s in samples], [s[2] for s in samples])
    if corr is None:
        out.append('<p class="summary">Correlation: n/a '
                   '(insufficient variance across points).</p>')
    else:
        trend = ("matches Fig 10 (stalls depress bandwidth)"
                 if corr < 0 else "does NOT match Fig 10")
        out.append(f'<p class="summary">Pearson correlation(stall '
                   f'fraction, bandwidth) = {corr:+.3f} — {trend}.</p>')
    out.append("<table>")
    out.append('<tr><th class="l">point</th><th>stall fraction</th>'
               '<th>mean bandwidth</th></tr>')
    for label, stall, bw in sorted(samples, key=lambda s: s[1]):
        out.append(f'<tr><td class="l">{_esc(label)}</td>'
                   f'<td>{stall:.3f}</td>'
                   f'<td>{_esc(format_si(bw, "B/s"))}</td></tr>')
    out.append("</table>")
    return out


def _metrics_section(results: CampaignResults) -> List[str]:
    point_metrics = results.point_metrics()
    if not point_metrics:
        return []
    from repro.obs.metrics import MetricsRegistry
    registry = MetricsRegistry()
    for _entry, delta in point_metrics:
        registry.merge_delta(delta)
    out = ["<h2>Campaign metrics</h2>",
           '<p class="summary">Per-point metric deltas folded across '
           'the whole journal (the measurer\'s running aggregate); '
           'histogram rows include bucket-estimated quantiles.</p>',
           "<table>",
           '<tr><th class="l">metric</th><th class="l">type</th>'
           '<th>value / count</th><th>p50</th><th>p95</th><th>p99</th>'
           '</tr>']
    for key, entry in registry.snapshot().items():
        kind = entry["type"]
        value = entry["value"]
        if kind == "histogram":
            q = value.get("quantiles", {})
            out.append(
                f'<tr><td class="l">{_esc(key)}</td>'
                f'<td class="l">histogram</td>'
                f'<td>{value["count"]}</td>'
                f'<td>{_esc(format_si(q.get("p50", 0.0)))}</td>'
                f'<td>{_esc(format_si(q.get("p95", 0.0)))}</td>'
                f'<td>{_esc(format_si(q.get("p99", 0.0)))}</td></tr>')
        else:
            out.append(
                f'<tr><td class="l">{_esc(key)}</td>'
                f'<td class="l">{_esc(kind)}</td>'
                f'<td>{_esc(format_si(value))}</td>'
                f'<td>-</td><td>-</td><td>-</td></tr>')
    out.append("</table>")
    return out


def _failures_section(results: CampaignResults) -> List[str]:
    failures = results.failures()
    out = ['<h2 id="failures">Failures</h2>']
    if not failures:
        out.append('<p class="summary">No failed trial records.</p>')
        return out
    out.append(f'<p class="summary">{len(failures)} failed trial '
               f'record(s); harness-level losses are marked '
               f'<code>[hole]</code> — those points are missing from '
               f'the series above.</p>')
    out.append("<table>")
    out.append('<tr><th class="l">experiment</th><th class="l">point'
               '</th><th>trial</th><th class="l">error</th>'
               '<th class="l">message</th></tr>')
    for f in failures:
        cls = ' class="hole"' if f["harness"] else ""
        hole = "[hole] " if f["harness"] else ""
        out.append(f'<tr{cls}><td class="l">{_esc(f["experiment"])}</td>'
                   f'<td class="l">{_esc(f["key"])}</td>'
                   f'<td>{f["trial"]}</td>'
                   f'<td class="l">{hole}{_esc(f["error"])}</td>'
                   f'<td class="l">{_esc(f["message"])}</td></tr>')
    out.append("</table>")
    return out


# ---------------------------------------------------------------------------
# Document assembly + validation
# ---------------------------------------------------------------------------

def render_html_report(results: CampaignResults,
                       compare: Optional[CampaignResults] = None,
                       title: Optional[str] = None) -> str:
    """Render one campaign (plus optional comparison) to HTML text."""
    title = title or f"Campaign report — {results.name}"
    counts = results.status_counts()
    summary = ", ".join(f"{v} {k}" for k, v in sorted(counts.items())) \
        or "empty journal"
    body: List[str] = [
        f"<h1>{_esc(title)}</h1>",
        f'<p class="summary">Journal <code>{_esc(results.name)}</code>: '
        f'{len(results.entries)} record(s) ({_esc(summary)}).  '
        f'Generated by <code>repro report</code>; self-contained, no '
        f'external assets.</p>']
    body.extend(_series_section(results))
    body.extend(_paper_section(results))
    if compare is not None:
        body.extend(_compare_section(results.compare(compare),
                                     compare.name))
    body.extend(_attribution_section(results))
    body.extend(_metrics_section(results))
    body.extend(_failures_section(results))
    return ("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
            "<meta charset=\"utf-8\"/>\n"
            f"<title>{_esc(title)}</title>\n"
            f"<style>{_CSS}</style>\n"
            "</head>\n<body>\n"
            + "\n".join(body)
            + "\n</body>\n</html>\n")


_VOID_TAGS = {"meta", "br", "hr", "img", "input", "link", "circle",
              "line", "rect", "polyline", "path"}


class _WellFormedChecker(HTMLParser):
    """Tag-balance checker for the self-contained report."""

    def __init__(self) -> None:
        super().__init__(convert_charrefs=True)
        self.stack: List[str] = []
        self.problems: List[str] = []
        self.seen: Dict[str, int] = {}

    def handle_starttag(self, tag, attrs):
        self.seen[tag] = self.seen.get(tag, 0) + 1
        if tag not in _VOID_TAGS:
            self.stack.append(tag)

    def handle_startendtag(self, tag, attrs):
        self.seen[tag] = self.seen.get(tag, 0) + 1

    def handle_endtag(self, tag):
        if tag in _VOID_TAGS:
            return
        if not self.stack:
            self.problems.append(f"closing </{tag}> with no open tag")
        elif self.stack[-1] != tag:
            self.problems.append(
                f"mismatched </{tag}>; open tag is <{self.stack[-1]}>")
            if tag in self.stack:
                while self.stack and self.stack[-1] != tag:
                    self.stack.pop()
                self.stack.pop()
        else:
            self.stack.pop()


def validate_html_report(text: str) -> List[str]:
    """Structural problems of a rendered report (empty list = valid).

    Checks well-formedness (balanced tags) and the report's own
    contract: an html/body skeleton and the paper-vs-measured table.
    CI additionally greps for content markers (CI bars etc.).
    """
    checker = _WellFormedChecker()
    try:
        checker.feed(text)
        checker.close()
    except Exception as err:  # pragma: no cover - parser internal
        return [f"HTML parse error: {err}"]
    problems = list(checker.problems)
    if checker.stack:
        problems.append(
            f"unclosed tag(s) at end of document: "
            f"{', '.join(checker.stack)}")
    for required in ("html", "body", "h1"):
        if not checker.seen.get(required):
            problems.append(f"missing <{required}> element")
    if 'id="paper-vs-measured"' not in text:
        problems.append("missing the paper-vs-measured table")
    return problems


def write_html_report(path, results: CampaignResults,
                      compare: Optional[CampaignResults] = None,
                      title: Optional[str] = None) -> str:
    """Render, self-validate and write; raises on an invalid render."""
    text = render_html_report(results, compare=compare, title=title)
    problems = validate_html_report(text)
    if problems:
        raise ValueError(
            "refusing to write an invalid HTML report: "
            + "; ".join(problems[:5]))
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return text
