"""The §2.1 benchmark protocol: alone, alone, together.

Two orchestrations cover the paper's experiments:

* :func:`run_throughput_protocol` — the computation is a continuously
  looping kernel (STREAM); its metric is memory bandwidth per core over
  a measurement window, while the communication metric is ping-pong
  latency/bandwidth.  Used for §4 (memory contention).
* :func:`run_duration_protocol` — the computation is a fixed amount of
  work (prime counting, AVX sweeps); its metric is the completion time,
  while ping-pongs loop for as long as the computation runs.  Used for
  §3 (frequency effects).

Each protocol step runs on a *fresh* cluster so steps cannot contaminate
each other, and every step is deterministic given the config seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.placement import (
    Placement, comm_core_for, compute_core_ids, data_numa_for,
)
from repro.hardware.presets import MachineSpec, get_preset
from repro.hardware.topology import Cluster, Machine
from repro.kernels.roofline import Kernel, KernelRun, run_kernel
from repro.kernels.stream import triad_kernel
from repro.mpi.comm import CommWorld
from repro.mpi.pingpong import LATENCY_SIZE, PingPong, PingPongResult

__all__ = ["SideBySideConfig", "ThroughputOutcome", "DurationOutcome",
           "run_throughput_protocol", "run_duration_protocol",
           "build_world"]


@dataclass
class SideBySideConfig:
    """Parameters of one side-by-side measurement."""

    spec: MachineSpec | str = "henri"
    n_compute_cores: int = 0
    placement: Placement = field(
        default_factory=lambda: Placement(data="near", comm_thread="far"))
    kernel_factory: Callable[[], Kernel] = triad_kernel
    message_size: int = LATENCY_SIZE
    reps: int = 30
    warmup_reps: int = 3
    seed: int = 0
    compute_on_both_nodes: bool = True
    # Throughput protocol: measurement window for kernel bandwidth.
    window: float = 0.08
    window_warmup: float = 0.02
    # Duration protocol: sweeps of fixed work per core.
    sweeps: int = 1

    def resolved_spec(self) -> MachineSpec:
        return get_preset(self.spec) if isinstance(self.spec, str) else self.spec


@dataclass
class ThroughputOutcome:
    """Result of the 3-step protocol with a looping kernel."""

    config: SideBySideConfig
    comm_alone: PingPongResult
    comm_together: Optional[PingPongResult]
    compute_alone_bw_per_core: List[float]       # one entry per core
    compute_together_bw_per_core: List[float]

    @property
    def compute_alone_bw(self) -> float:
        return float(np.median(self.compute_alone_bw_per_core)) \
            if self.compute_alone_bw_per_core else 0.0

    @property
    def compute_together_bw(self) -> float:
        return float(np.median(self.compute_together_bw_per_core)) \
            if self.compute_together_bw_per_core else 0.0


@dataclass
class DurationOutcome:
    """Result of the 3-step protocol with fixed-work kernels.

    ``compute_*_duration`` is the median per-core completion time (the
    paper's computing cores all do the same work); ``*_makespan`` is the
    slowest core.
    """

    config: SideBySideConfig
    comm_alone: PingPongResult
    comm_together: Optional[PingPongResult]
    compute_alone_duration: float
    compute_together_duration: float
    compute_alone_makespan: float = 0.0
    compute_together_makespan: float = 0.0


# ---------------------------------------------------------------------------
# World construction
# ---------------------------------------------------------------------------

def build_world(config: SideBySideConfig) -> Tuple[Cluster, CommWorld,
                                                   PingPong]:
    """Fresh 2-node cluster + comm world + ping-pong for *config*."""
    spec = config.resolved_spec()
    cluster = Cluster(spec, n_nodes=2, seed=config.seed)
    comm_cores = {m.node_id: comm_core_for(m, config.placement.comm_thread)
                  for m in cluster.machines}
    world = CommWorld(cluster, comm_cores=comm_cores)
    numa_a = data_numa_for(cluster.machine(0), config.placement.data)
    numa_b = data_numa_for(cluster.machine(1), config.placement.data)
    pingpong = PingPong(world, data_numa_a=numa_a, data_numa_b=numa_b)
    return cluster, world, pingpong


def _start_kernels(cluster: Cluster, config: SideBySideConfig,
                   comm_cores: Dict[int, int],
                   sweeps: Optional[int]) -> List[KernelRun]:
    """Launch the configured kernel on n compute cores of each node."""
    runs: List[KernelRun] = []
    nodes = cluster.machines if config.compute_on_both_nodes \
        else cluster.machines[:1]
    for machine in nodes:
        data_numa = data_numa_for(machine, config.placement.data)
        cores = compute_core_ids(machine, config.n_compute_cores,
                                 comm_cores[machine.node_id])
        for core in cores:
            runs.append(run_kernel(machine, core, config.kernel_factory(),
                                   data_numa=data_numa, sweeps=sweeps))
    return runs


def _window_bandwidths(machine_runs: List[Tuple[Machine, KernelRun]],
                       snapshots: Dict[int, dict],
                       window: float) -> List[float]:
    """Per-core achieved DRAM bandwidth over the measurement window."""
    out: List[float] = []
    for machine, run in machine_runs:
        before = snapshots[id(run)]
        delta = machine.counters.delta(before, cores=[run.stats.core_id])
        out.append(delta.bytes_moved / window if window > 0 else 0.0)
    return out


# ---------------------------------------------------------------------------
# Protocols
# ---------------------------------------------------------------------------

def run_throughput_protocol(config: SideBySideConfig) -> ThroughputOutcome:
    """STREAM-style protocol: looping kernels, windowed bandwidth."""
    # Step 2 of §2.1 — communication without computation.
    _, _, pingpong = build_world(config)
    comm_alone = pingpong.run(config.message_size, reps=config.reps,
                              warmup=config.warmup_reps)

    compute_alone: List[float] = []
    compute_together: List[float] = []
    comm_together: Optional[PingPongResult] = None

    if config.n_compute_cores > 0:
        # Step 1 — computation without communication.
        cluster, world, _ = build_world(config)
        comm_cores = {r.node_id: r.comm_core for r in world.ranks}
        runs = _start_kernels(cluster, config, comm_cores, sweeps=None)
        machine_runs = _machine_runs(cluster, runs, config)
        cluster.sim.run(until=config.window_warmup)
        snaps = {id(run): m.counters.snapshot() for m, run in machine_runs}
        cluster.sim.run(until=config.window_warmup + config.window)
        compute_alone = _window_bandwidths(machine_runs, snaps,
                                           config.window)
        for run in runs:
            run.request_stop()
        cluster.sim.run()

        # Step 3 — computation with side-by-side communication.  The
        # ping-pong loops for at least `reps` iterations AND at least the
        # measurement window, so the kernels' windowed bandwidth is
        # meaningful even for microsecond-scale latency messages.
        cluster, world, pingpong = build_world(config)
        comm_cores = {r.node_id: r.comm_core for r in world.ranks}
        runs = _start_kernels(cluster, config, comm_cores, sweeps=None)
        machine_runs = _machine_runs(cluster, runs, config)
        cluster.sim.run(until=config.window_warmup)
        snaps = {id(run): m.counters.snapshot() for m, run in machine_runs}
        t0 = cluster.sim.now
        t_end = t0 + config.window
        latencies: List[float] = []

        def pp_loop():
            engine = world.engine
            buf_a, buf_b = pingpong._buffers(config.message_size)  # noqa: SLF001
            a, b = pingpong.rank_a, pingpong.rank_b
            it = 0
            while it < config.warmup_reps + config.reps \
                    or cluster.sim.now < t_end:
                rec = yield cluster.sim.process(engine.half_transfer(
                    a.node_id, a.comm_core, buf_a,
                    b.node_id, b.comm_core, buf_b, config.message_size))
                rec2 = yield cluster.sim.process(engine.half_transfer(
                    b.node_id, b.comm_core, buf_b,
                    a.node_id, a.comm_core, buf_a, config.message_size))
                if it >= config.warmup_reps:
                    latencies.append(rec.duration)
                    latencies.append(rec2.duration)
                it += 1

        proc = cluster.sim.process(pp_loop())
        while not proc.triggered:
            cluster.sim.step()
        window = cluster.sim.now - t0
        compute_together = _window_bandwidths(machine_runs, snaps, window)
        for run in runs:
            run.request_stop()
        cluster.sim.run()
        comm_together = PingPongResult(size=config.message_size,
                                       latencies=np.asarray(latencies))

    return ThroughputOutcome(
        config=config,
        comm_alone=comm_alone,
        comm_together=comm_together,
        compute_alone_bw_per_core=compute_alone,
        compute_together_bw_per_core=compute_together,
    )


def _machine_runs(cluster: Cluster, runs: List[KernelRun],
                  config: SideBySideConfig):
    """Pair each kernel run with its machine (runs are created node by
    node in `_start_kernels` order)."""
    nodes = cluster.machines if config.compute_on_both_nodes \
        else cluster.machines[:1]
    per_node = len(runs) // len(nodes) if nodes else 0
    pairs = []
    for i, run in enumerate(runs):
        machine = nodes[i // per_node] if per_node else nodes[0]
        pairs.append((machine, run))
    return pairs


def run_duration_protocol(config: SideBySideConfig) -> DurationOutcome:
    """Fixed-work protocol: kernel completion time vs ping-pong latency."""
    if config.n_compute_cores <= 0:
        raise ValueError("duration protocol needs computing cores")

    # Step 2 — communication without computation.
    _, _, pingpong = build_world(config)
    comm_alone = pingpong.run(config.message_size, reps=config.reps,
                              warmup=config.warmup_reps)

    # Step 1 — computation without communication.
    cluster, world, _ = build_world(config)
    comm_cores = {r.node_id: r.comm_core for r in world.ranks}
    runs = _start_kernels(cluster, config, comm_cores, sweeps=config.sweeps)
    cluster.sim.run()
    compute_alone = float(np.median([r.stats.duration for r in runs]))
    alone_makespan = max(r.stats.duration for r in runs)

    # Step 3 — both together: ping-pong loops while the kernels run.
    # Latencies are only recorded while *every* computing core is still
    # working, so stragglers do not dilute the contended measurements.
    cluster, world, pingpong = build_world(config)
    comm_cores = {r.node_id: r.comm_core for r in world.ranks}
    runs = _start_kernels(cluster, config, comm_cores, sweeps=config.sweeps)
    latencies: List[float] = []

    def pingpong_loop():
        engine = world.engine
        buf_a, buf_b = pingpong._buffers(config.message_size)  # noqa: SLF001
        a, b = pingpong.rank_a, pingpong.rank_b
        it = 0
        while any(not run.process.triggered for run in runs):
            rec_ab = yield world.sim.process(engine.half_transfer(
                a.node_id, a.comm_core, buf_a,
                b.node_id, b.comm_core, buf_b, config.message_size))
            rec_ba = yield world.sim.process(engine.half_transfer(
                b.node_id, b.comm_core, buf_b,
                a.node_id, a.comm_core, buf_a, config.message_size))
            all_running = all(not run.process.triggered for run in runs)
            if it >= config.warmup_reps and all_running:
                latencies.append(rec_ab.duration)
                latencies.append(rec_ba.duration)
            it += 1

    world.sim.process(pingpong_loop())
    cluster.sim.run()
    compute_together = float(np.median([r.stats.duration for r in runs]))
    together_makespan = max(r.stats.duration for r in runs)
    comm_together = PingPongResult(size=config.message_size,
                                   latencies=np.asarray(latencies)) \
        if latencies else None

    return DurationOutcome(
        config=config,
        comm_alone=comm_alone,
        comm_together=comm_together,
        compute_alone_duration=compute_alone,
        compute_together_duration=compute_together,
        compute_alone_makespan=alone_makespan,
        compute_together_makespan=together_makespan,
    )
