"""Runtime self-checks for the simulation core (``--check-invariants``).

The incremental fluid solver (PR 3) and the generation-based event heap
trade brute-force recomputation for bookkeeping — dirty-component
gathering, per-flow usage caches, stale-entry generations.  That
bookkeeping is exactly the kind of state that silent bugs corrupt:
nothing crashes, the sweep just quietly reports wrong numbers.  This
module provides the switch the solver and the engine consult to verify
themselves at runtime:

* per-resource capacity is never exceeded and rates stay non-negative
  and demand-capped after every rate solve;
* the per-flow usage caches agree with the authoritative usage maps;
* on a sampled fraction of solves, the dirty-component solution is
  cross-checked **bitwise** against a from-scratch global solve — the
  global reference deliberately runs the *scalar* solver, so with the
  vectorized component path (PR 8) enabled this one comparison also
  pins vector-vs-scalar bit-equivalence on live workloads;
* event time never moves backwards through the engine's heap.

A failed check raises :class:`InvariantViolation` naming the culprit
flow/resource and its connected component, so the diagnostic points at
the corrupted state instead of at whichever figure happened to consume
it ten thousand events later.

Checking is off by default (the hot paths pay one module-attribute
test).  Enable it with ``REPRO_CHECK_INVARIANTS=1`` in the environment
(read at import, the CI switch), the ``--check-invariants`` CLI flag,
or :func:`enable` / the :func:`invariant_checks` context manager from
code.  ``REPRO_CHECK_SAMPLE`` (default 16) sets the 1-in-N sampling of
the expensive global cross-check; the cheap checks run on every solve.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Optional

__all__ = ["InvariantViolation", "enable", "disable", "enabled",
           "sample_every", "invariant_checks"]


class InvariantViolation(RuntimeError):
    """A simulation self-check failed; the message names the culprit
    (flow, resource, or event) and its connected component."""


def _env_enabled() -> bool:
    return os.environ.get("REPRO_CHECK_INVARIANTS", "") not in ("", "0")


def _env_sample() -> int:
    raw = os.environ.get("REPRO_CHECK_SAMPLE", "")
    try:
        value = int(raw)
    except ValueError:
        return 16
    return value if value > 0 else 16


# Consulted directly (``_inv.ENABLED``) by the engine/fluid hot paths.
ENABLED: bool = _env_enabled()
SAMPLE_EVERY: int = _env_sample()


def enabled() -> bool:
    """Whether invariant checking is currently on."""
    return ENABLED


def sample_every() -> int:
    """Run the global cross-check on every Nth rate solve."""
    return SAMPLE_EVERY


def enable(sample: Optional[int] = None) -> None:
    """Turn invariant checking on (``sample``: cross-check 1-in-N)."""
    global ENABLED, SAMPLE_EVERY
    ENABLED = True
    if sample is not None:
        if sample <= 0:
            raise ValueError("sample must be >= 1")
        SAMPLE_EVERY = int(sample)


def disable() -> None:
    """Turn invariant checking off."""
    global ENABLED
    ENABLED = False


@contextmanager
def invariant_checks(sample: Optional[int] = None):
    """Scope invariant checking to a ``with`` block (tests)."""
    global ENABLED, SAMPLE_EVERY
    prev_enabled, prev_sample = ENABLED, SAMPLE_EVERY
    enable(sample)
    try:
        yield
    finally:
        ENABLED, SAMPLE_EVERY = prev_enabled, prev_sample
