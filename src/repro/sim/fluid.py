"""Fluid-flow bandwidth sharing with weighted max-min fairness.

This module implements the SimGrid-style fluid model used throughout the
reproduction: every shared hardware channel (memory controller, inter-NUMA
link, PCIe lanes, network wire) is a :class:`Resource` with a capacity in
bytes/s, and every ongoing transfer is a :class:`Flow` crossing an ordered
set of resources.

Rates are assigned by *progressive filling*: the water level ``u`` rises
and each flow receives ``min(demand, weight * u)`` until some resource
saturates; saturated flows are frozen and filling continues on the rest.
This yields the weighted max-min fair allocation with demand caps.

Two refinements matter for reproducing the paper:

* **Usage multipliers** — a flow may consume more resource capacity than
  its payload rate.  NIC DMA engines issue reads, descriptor fetches and
  write-allocations, so a DMA flow at rate ``x`` can occupy ``β·x`` of a
  memory controller (β ≈ 1.5–2).  This is what makes a single ping-pong
  noticeably hurt STREAM (§4.3 of the paper: −25 % with 5 cores).
* **Weights** — the NIC's DMA engines arbitrate for the memory bus on
  different terms than a core's load/store unit; a weight ≠ 1 captures
  that the NIC does not degrade like "just one more core".

The model is event-driven: whenever a flow starts, finishes, changes
demand, or a capacity changes, all rates are recomputed and the finite
flows' completion events are rescheduled.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.obs import context as _obs_context
from repro.sim.engine import ScheduledHandle, SimulationError, Simulator
from repro.sim.events import Event

__all__ = ["Resource", "Flow", "FluidNetwork"]

_EPS = 1e-12
_REL_TOL = 1e-9


class Resource:
    """A capacity-limited channel (bytes/s)."""

    __slots__ = ("name", "_capacity", "network")

    def __init__(self, name: str, capacity: float):
        if capacity <= 0:
            raise ValueError(f"resource {name!r} capacity must be > 0")
        self.name = name
        self._capacity = float(capacity)
        self.network: Optional["FluidNetwork"] = None

    @property
    def capacity(self) -> float:
        return self._capacity

    def set_capacity(self, capacity: float) -> None:
        """Change the capacity (e.g. uncore frequency change); triggers a
        global rate recomputation."""
        if capacity <= 0:
            raise ValueError("capacity must be > 0")
        self._capacity = float(capacity)
        if self.network is not None:
            self.network.update()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Resource({self.name!r}, {self._capacity:.3g} B/s)"


class Flow:
    """A transfer crossing one or more resources.

    Parameters
    ----------
    resources:
        Ordered resources the flow crosses (path).  May be empty only if
        *demand* is finite (the flow then simply runs at its demand).
    size:
        Total payload bytes, or ``None`` for a continuous background flow
        that never completes on its own.
    demand:
        Maximum payload rate in bytes/s (``inf`` = only limited by the
        path).
    weight:
        Max-min fairness weight (default 1.0).
    usage:
        Usage multiplier: the flow occupies ``usage × rate`` on each
        resource of its path.  Either a scalar applied to all resources or
        a mapping ``{resource: multiplier}`` (missing entries default to
        1.0).
    label:
        Debugging/tracing label.
    """

    __slots__ = (
        "resources", "size", "demand", "weight", "_usage_scalar",
        "_usage_map", "label", "rate", "transferred", "done",
        "_completion_handle", "_active", "start_time",
    )

    def __init__(
        self,
        resources: Sequence[Resource],
        size: Optional[float] = None,
        demand: float = math.inf,
        weight: float = 1.0,
        usage: float | Dict[Resource, float] = 1.0,
        label: str = "",
    ):
        self.resources: Tuple[Resource, ...] = tuple(resources)
        if size is not None and size < 0:
            raise ValueError("flow size must be >= 0")
        if not self.resources and not math.isfinite(demand):
            raise ValueError("a flow with an empty path needs a finite demand")
        if weight <= 0:
            raise ValueError("flow weight must be > 0")
        if demand <= 0:
            raise ValueError("flow demand must be > 0")
        self.size = size
        self.demand = float(demand)
        self.weight = float(weight)
        if isinstance(usage, dict):
            self._usage_scalar = 1.0
            self._usage_map = dict(usage)
        else:
            self._usage_scalar = float(usage)
            self._usage_map = None
        self.label = label
        self.rate = 0.0
        self.transferred = 0.0
        self.done: Optional[Event] = None
        self._completion_handle: Optional[ScheduledHandle] = None
        self._active = False
        self.start_time = 0.0

    def usage_on(self, resource: Resource) -> float:
        """Multiplier applied to this flow's rate on *resource*."""
        if self._usage_map is not None:
            return self._usage_map.get(resource, 1.0)
        return self._usage_scalar

    @property
    def remaining(self) -> Optional[float]:
        """Bytes left to transfer, or ``None`` for continuous flows."""
        if self.size is None:
            return None
        return max(0.0, self.size - self.transferred)

    @property
    def active(self) -> bool:
        return self._active

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Flow({self.label or 'anon'}, rate={self.rate:.3g}, "
                f"remaining={self.remaining})")


class FluidNetwork:
    """Set of active flows over shared resources; owns rate assignment."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        # Insertion-ordered (dict-as-set): Flow hashes by identity, so a
        # plain set iterates in memory-address order, which varies from
        # run to run and would make same-instant completions fire in a
        # nondeterministic order.
        self._flows: Dict[Flow, None] = {}
        self._last_update = 0.0

    # -- public API -------------------------------------------------------
    @property
    def flows(self) -> Set[Flow]:
        return set(self._flows)

    def start_flow(self, flow: Flow) -> Flow:
        """Activate *flow*; its :attr:`Flow.done` event fires on completion
        (finite flows only) with the completion time as value."""
        if flow._active:
            raise SimulationError("flow already active")
        self._advance()
        flow._active = True
        flow.start_time = self.sim.now
        flow.done = self.sim.event()
        for res in flow.resources:
            if res.network is None:
                res.network = self
            elif res.network is not self:
                raise SimulationError(
                    f"resource {res.name!r} belongs to another network")
        self._flows[flow] = None
        if _obs_context._ACTIVE is not None:
            _obs_context._ACTIVE.on_flow_start(self, flow)
        self._recompute()
        return flow

    def transfer(self, resources: Sequence[Resource], size: float,
                 demand: float = math.inf, weight: float = 1.0,
                 usage: float | Dict[Resource, float] = 1.0,
                 label: str = "") -> Flow:
        """Convenience: create and start a finite flow."""
        flow = Flow(resources, size=size, demand=demand, weight=weight,
                    usage=usage, label=label)
        return self.start_flow(flow)

    def stop_flow(self, flow: Flow) -> float:
        """Deactivate *flow* (e.g. a continuous background flow); returns
        bytes transferred so far."""
        if not flow._active:
            return flow.transferred
        self._advance()
        self._deactivate(flow)
        self._recompute()
        return flow.transferred

    def set_demand(self, flow: Flow, demand: float) -> None:
        """Change a flow's demand cap and recompute rates."""
        if demand <= 0:
            raise ValueError("demand must be > 0")
        self._advance()
        flow.demand = float(demand)
        self._recompute()

    def update(self) -> None:
        """Recompute rates after an external change (capacity update)."""
        self._advance()
        self._recompute()

    def utilization(self, resource: Resource) -> float:
        """Fraction of *resource* capacity currently consumed (0..1+)."""
        used = sum(f.rate * f.usage_on(resource)
                   for f in self._flows if resource in f.resources)
        return used / resource.capacity

    def flows_through(self, resource: Resource) -> List[Flow]:
        return [f for f in self._flows if resource in f.resources]

    # -- internals ----------------------------------------------------------
    def _advance(self) -> None:
        """Account transferred bytes since the last rate change."""
        now = self.sim.now
        dt = now - self._last_update
        if dt > 0:
            for flow in self._flows:
                flow.transferred += flow.rate * dt
        self._last_update = now

    def _deactivate(self, flow: Flow) -> None:
        flow._active = False
        flow.rate = 0.0
        if flow._completion_handle is not None:
            flow._completion_handle.cancel()
            flow._completion_handle = None
        self._flows.pop(flow, None)

    def _recompute(self) -> None:
        # Completing a flow frees capacity, which can push other flows to
        # completion at the same instant; loop until a fixed point.
        while True:
            self._assign_rates()
            finished = [f for f in self._flows if self._is_finished(f)]
            if not finished:
                break
            for flow in finished:
                self._complete(flow)
        self._reschedule_completions()
        if _obs_context._ACTIVE is not None:
            _obs_context._ACTIVE.on_rates_changed(self)

    def _is_finished(self, flow: Flow) -> bool:
        """True when the flow's remainder is numerically done.

        Two criteria: the byte remainder is within relative epsilon of
        the size, or the time needed to drain it at the current rate is
        below the representable time increment at the current simulated
        time (otherwise completion events would stop advancing time and
        livelock the event loop).
        """
        remaining = flow.remaining
        if remaining is None:
            return False
        if remaining <= _EPS * max(1.0, flow.size or 1.0):
            return True
        if flow.rate > 0:
            time_floor = max(1e-12, 8.0 * abs(self.sim.now) * 2.3e-16)
            return remaining <= flow.rate * time_floor
        return False

    def _assign_rates(self) -> None:
        """Weighted max-min fair allocation via progressive filling.

        All working collections are insertion-ordered dicts-as-sets so
        the freezing order — and with it the floating-point rounding of
        the residual-capacity subtractions — is identical on every run.
        """
        unfixed: Dict[Flow, None] = dict.fromkeys(self._flows)
        # Flows with an empty path are only demand-limited.
        for flow in list(unfixed):
            if not flow.resources:
                flow.rate = flow.demand
                unfixed.pop(flow, None)

        avail: Dict[Resource, float] = {}
        res_flows: Dict[Resource, Dict[Flow, None]] = {}
        for flow in unfixed:
            for res in flow.resources:
                if res not in avail:
                    avail[res] = res.capacity
                    res_flows[res] = {}
                res_flows[res][flow] = None
        # Account for capacity consumed by already-fixed (empty-path) flows:
        # none, by construction (empty path touches no resource).

        while unfixed:
            # Water level at which each resource would saturate.
            level = math.inf
            for res, fset in res_flows.items():
                if not fset:
                    continue
                denom = sum(f.weight * f.usage_on(res) for f in fset)
                if denom <= 0:
                    continue
                level = min(level, avail[res] / denom)
            if not math.isfinite(level):
                # No binding resource: every remaining flow must be
                # demand-limited (paths through inf-capacity resources
                # cannot occur because capacities are finite; this happens
                # only when all remaining resources have no flows).
                for flow in unfixed:
                    if not math.isfinite(flow.demand):
                        raise SimulationError(
                            f"flow {flow.label!r} has unbounded rate")
                    self._fix(flow, flow.demand, avail, res_flows)
                unfixed.clear()
                break

            # Demand-limited flows below the water level are frozen first.
            demand_limited = [f for f in unfixed
                              if f.demand <= f.weight * level * (1 + _REL_TOL)]
            if demand_limited:
                for flow in demand_limited:
                    self._fix(flow, flow.demand, avail, res_flows)
                    unfixed.pop(flow, None)
                continue

            # Otherwise freeze every flow crossing a bottleneck resource.
            froze = False
            for res, fset in list(res_flows.items()):
                if not fset:
                    continue
                denom = sum(f.weight * f.usage_on(res) for f in fset)
                if denom <= 0:
                    continue
                if avail[res] / denom <= level * (1 + _REL_TOL):
                    for flow in list(fset):
                        if flow in unfixed:
                            self._fix(flow, flow.weight * level,
                                      avail, res_flows)
                            unfixed.pop(flow, None)
                            froze = True
            if not froze:  # pragma: no cover - numerical safety net
                for flow in list(unfixed):
                    self._fix(flow, flow.weight * level, avail, res_flows)
                unfixed.clear()

    @staticmethod
    def _fix(flow: Flow, rate: float,
             avail: Dict[Resource, float],
             res_flows: Dict[Resource, Dict[Flow, None]]) -> None:
        flow.rate = max(0.0, rate)
        for res in flow.resources:
            avail[res] = max(0.0, avail[res] - flow.rate * flow.usage_on(res))
            res_flows[res].pop(flow, None)

    def _reschedule_completions(self) -> None:
        for flow in list(self._flows):
            if flow._completion_handle is not None:
                flow._completion_handle.cancel()
                flow._completion_handle = None
            remaining = flow.remaining
            if remaining is None:
                continue
            if flow.rate <= 0:
                continue  # starved: will be rescheduled on the next update
            eta = remaining / flow.rate
            flow._completion_handle = self.sim.schedule(
                eta, self._on_completion, flow)

    def _on_completion(self, flow: Flow) -> None:
        self._advance()
        if not self._is_finished(flow):
            # Rates changed under us; reschedule.
            self._reschedule_completions()
            return
        self._complete(flow)
        self._recompute()

    def _complete(self, flow: Flow) -> None:
        flow.transferred = flow.size if flow.size is not None else flow.transferred
        done = flow.done
        self._deactivate(flow)
        if _obs_context._ACTIVE is not None:
            _obs_context._ACTIVE.on_flow_end(self, flow)
        if done is not None and not done.triggered:
            done.succeed(self.sim.now)
