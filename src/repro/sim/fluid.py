"""Fluid-flow bandwidth sharing with weighted max-min fairness.

This module implements the SimGrid-style fluid model used throughout the
reproduction: every shared hardware channel (memory controller, inter-NUMA
link, PCIe lanes, network wire) is a :class:`Resource` with a capacity in
bytes/s, and every ongoing transfer is a :class:`Flow` crossing an ordered
set of resources.

Rates are assigned by *progressive filling*: the water level ``u`` rises
and each flow receives ``min(demand, weight * u)`` until some resource
saturates; saturated flows are frozen and filling continues on the rest.
This yields the weighted max-min fair allocation with demand caps.

Two refinements matter for reproducing the paper:

* **Usage multipliers** — a flow may consume more resource capacity than
  its payload rate.  NIC DMA engines issue reads, descriptor fetches and
  write-allocations, so a DMA flow at rate ``x`` can occupy ``β·x`` of a
  memory controller (β ≈ 1.5–2).  This is what makes a single ping-pong
  noticeably hurt STREAM (§4.3 of the paper: −25 % with 5 cores).
* **Weights** — the NIC's DMA engines arbitrate for the memory bus on
  different terms than a core's load/store unit; a weight ≠ 1 captures
  that the NIC does not degrade like "just one more core".

The model is event-driven, and rate recomputation is *incremental*:
flows and resources form a bipartite graph, and a start / stop / demand
/ capacity event only re-solves the connected component of flows that
(transitively) share a resource with the changed flow.  Flows in other
components keep their rates untouched — progressive filling restricted
to a component freezes its flows in exactly the same order as a global
pass would, so the allocation (and its floating-point rounding) is the
one a full recompute produces.  See "Fluid solver internals" in
DESIGN.md for the invariants this relies on.

Large components solve on a *vectorized* path: the first repeat solve
of a given component membership freezes its flow×resource incidence
into a :class:`_ComponentPlan` of numpy arrays, and progressive filling
runs as batched row operations instead of dict-of-set scans.  The
vector path is an arithmetic twin of the scalar one — same operand
order, same tie-breaking — so seeded runs are bit-identical whichever
path solves a component (see DESIGN.md §4.1).
"""

from __future__ import annotations

import math
from operator import attrgetter
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.obs import context as _obs_context
from repro.sim import invariants as _inv
from repro.sim.engine import ScheduledHandle, SimulationError, Simulator
from repro.sim.events import Event

__all__ = ["Resource", "Flow", "FluidNetwork"]

_EPS = 1e-12
_REL_TOL = 1e-9

# Activation-order sort key (used on every restricted-scan path; an
# attrgetter beats a lambda at these call counts).
_SEQ_KEY = attrgetter("_seq")

# Components below this many flows solve on the scalar path: numpy's
# per-op dispatch overhead (~1–2 µs) swamps the win on small arrays,
# and the figures' components are mostly single-digit.  Tests pin
# ``FluidNetwork._vec_min`` to force either path.
_VEC_MIN = 32

# Component-plan cache bound; cleared wholesale on overflow (plans are
# cheap to rebuild and the cache is hot for a handful of memberships).
_PLAN_CACHE_MAX = 256


class Resource:
    """A capacity-limited channel (bytes/s)."""

    __slots__ = ("name", "_capacity", "network")

    def __init__(self, name: str, capacity: float):
        if capacity <= 0:
            raise ValueError(f"resource {name!r} capacity must be > 0")
        self.name = name
        self._capacity = float(capacity)
        self.network: Optional["FluidNetwork"] = None

    @property
    def capacity(self) -> float:
        return self._capacity

    def set_capacity(self, capacity: float) -> None:
        """Change the capacity (e.g. uncore frequency change); triggers a
        rate recomputation of this resource's connected component."""
        if capacity <= 0:
            raise ValueError("capacity must be > 0")
        self._capacity = float(capacity)
        if self.network is not None:
            self.network.update(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Resource({self.name!r}, {self._capacity:.3g} B/s)"


class Flow:
    """A transfer crossing one or more resources.

    Parameters
    ----------
    resources:
        Ordered resources the flow crosses (path).  A resource appearing
        several times is counted **once**: duplicates are removed here,
        preserving first-occurrence order, so the water-level
        denominator, the capacity subtraction and ``utilization()`` all
        agree on one occupancy per resource.  May be empty only if
        *demand* is finite (the flow then simply runs at its demand).
    size:
        Total payload bytes, or ``None`` for a continuous background flow
        that never completes on its own.
    demand:
        Maximum payload rate in bytes/s (``inf`` = only limited by the
        path).
    weight:
        Max-min fairness weight (default 1.0).
    usage:
        Usage multiplier: the flow occupies ``usage × rate`` on each
        resource of its path.  Either a scalar applied to all resources or
        a mapping ``{resource: multiplier}`` (missing entries default to
        1.0).
    label:
        Debugging/tracing label.
    """

    __slots__ = (
        "resources", "size", "demand", "weight", "_usage_scalar",
        "_usage_map", "label", "rate", "transferred", "done",
        "_completion_handle", "_active", "start_time", "_usages",
        "_finish_eps", "_seq",
    )

    def __init__(
        self,
        resources: Sequence[Resource],
        size: Optional[float] = None,
        demand: float = math.inf,
        weight: float = 1.0,
        usage: float | Dict[Resource, float] = 1.0,
        label: str = "",
    ):
        # Dedupe the path while preserving first-occurrence order
        # (resources hash by identity, so dict.fromkeys is an id-dedup).
        self.resources: Tuple[Resource, ...] = tuple(dict.fromkeys(resources))
        if size is not None and size < 0:
            raise ValueError("flow size must be >= 0")
        if not self.resources and not math.isfinite(demand):
            raise ValueError("a flow with an empty path needs a finite demand")
        if weight <= 0:
            raise ValueError("flow weight must be > 0")
        if demand <= 0:
            raise ValueError("flow demand must be > 0")
        self.size = size
        self.demand = float(demand)
        self.weight = float(weight)
        if isinstance(usage, dict):
            self._usage_scalar = 1.0
            self._usage_map = dict(usage)
        else:
            self._usage_scalar = float(usage)
            self._usage_map = None
        self.label = label
        self.rate = 0.0
        self.transferred = 0.0
        self.done: Optional[Event] = None
        self._completion_handle: Optional[ScheduledHandle] = None
        self._active = False
        self.start_time = 0.0
        # Per-path-resource usage multipliers, cached once (the solver's
        # hot loops would otherwise re-resolve the usage map per round).
        self._usages: Tuple[float, ...] = tuple(
            self.usage_on(res) for res in self.resources)
        # Completion threshold, cached for the finished-scan hot loop.
        self._finish_eps = _EPS * max(1.0, size if size else 1.0)
        self._seq = 0  # activation order within the owning network

    def usage_on(self, resource: Resource) -> float:
        """Multiplier applied to this flow's rate on *resource*."""
        if self._usage_map is not None:
            return self._usage_map.get(resource, 1.0)
        return self._usage_scalar

    @property
    def remaining(self) -> Optional[float]:
        """Bytes left to transfer, or ``None`` for continuous flows."""
        if self.size is None:
            return None
        return max(0.0, self.size - self.transferred)

    @property
    def active(self) -> bool:
        return self._active

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Flow({self.label or 'anon'}, rate={self.rate:.3g}, "
                f"remaining={self.remaining})")


class _ComponentPlan:
    """Frozen array layout of one dirty connected component.

    Built once per distinct component membership (keyed by the flows'
    activation-sequence tuple) and reused for every subsequent solve of
    the same component:

    * ``W`` — resources × flows matrix of cached ``weight · usage``
      products (the water-level denominators are left-to-right sums of
      its rows over the still-unfixed columns);
    * ``M`` — boolean membership matrix (``usage`` may be 0, which
      zeroes the product but keeps the flow on the resource);
    * per-flow path index/usage arrays for the residual-capacity
      subtraction of :meth:`FluidNetwork._fix_vec`.

    Everything baked in is immutable for the key's lifetime: sequence
    numbers are never reused, and a flow's path, weight and usage
    multipliers are fixed at construction.  Demands and capacities can
    change between solves, so those are re-gathered per solve.

    Flow columns are in activation (``_seq``) order and resources in
    first-touch order — exactly the iteration orders of the scalar
    solver, so freeze order and rounding match it bitwise.
    """

    __slots__ = ("flows", "empty", "resources", "W", "M", "weights",
                 "weights_l", "paths")

    def __init__(self, dirty: Sequence[Flow]):
        empty: List[Flow] = []
        flows: List[Flow] = []
        for f in dirty:
            (flows if f.resources else empty).append(f)
        self.empty = tuple(empty)
        self.flows = tuple(flows)
        res_index: Dict[Resource, int] = {}
        resources: List[Resource] = []
        for f in flows:
            for res in f.resources:
                if res not in res_index:
                    res_index[res] = len(resources)
                    resources.append(res)
        self.resources = tuple(resources)
        nf = len(flows)
        nr = len(resources)
        W = np.zeros((nr, nf))
        M = np.zeros((nr, nf), dtype=bool)
        # Per-flow path as (resource index, usage) pairs for the
        # residual-capacity debit of _fix_vec.  Plain Python pairs on
        # purpose: the debit is sequential by construction (its
        # rounding is order-dependent), so per-element numpy indexing
        # would only add dispatch overhead to an O(path) scalar loop.
        paths: List[Tuple[Tuple[int, float], ...]] = []
        for j, f in enumerate(flows):
            w = f.weight
            path: List[Tuple[int, float]] = []
            for res, wu in zip(f.resources, f._usages):
                i = res_index[res]
                W[i, j] = w * wu
                M[i, j] = True
                path.append((i, wu))
            paths.append(tuple(path))
        self.W = W
        self.M = M
        self.weights = np.array([f.weight for f in flows])
        self.weights_l = [f.weight for f in flows]
        self.paths = paths


class _SmallPlan:
    """Cached list layout of a sub-``_vec_min`` component.

    The small-component solver's per-solve cost is dominated by
    rebuilding its resource table and member/path lists; all of that is
    immutable for a given membership (seqs are never reused, paths,
    weights and usage multipliers are fixed at flow construction), so
    it is built once per ``_comp_cache`` key.  Demands and capacities
    are re-read each solve.  Orders (flow slots == activation order,
    resources == first-touch order, members slot-ordered per resource)
    mirror the scalar solver's dict iteration orders exactly.
    """

    __slots__ = ("flows", "empty", "resources", "members", "paths")

    def __init__(self, dirty: Sequence[Flow]):
        empty: List[Flow] = []
        flows: List[Flow] = []
        for f in dirty:
            (flows if f.resources else empty).append(f)
        self.empty = tuple(empty)
        self.flows = tuple(flows)
        index: Dict[Resource, int] = {}
        resources: List[Resource] = []
        members: List[List[Tuple[int, float]]] = []
        paths: List[Tuple[Tuple[int, float], ...]] = []
        for k, flow in enumerate(flows):
            weight = flow.weight
            path: List[Tuple[int, float]] = []
            for res, wu in zip(flow.resources, flow._usages):
                i = index.get(res)
                if i is None:
                    i = index[res] = len(resources)
                    resources.append(res)
                    members.append([])
                members[i].append((k, weight * wu))
                path.append((i, wu))
            paths.append(tuple(path))
        self.resources = tuple(resources)
        self.members = tuple(tuple(m) for m in members)
        self.paths = tuple(paths)


class FluidNetwork:
    """Set of active flows over shared resources; owns rate assignment.

    Internals (see DESIGN.md "Fluid solver internals"): the network
    maintains a flow↔resource adjacency (:attr:`_res_flows`) updated on
    start/stop, gathers the *dirty connected component* of an event by a
    traversal over that adjacency, and re-runs progressive filling only
    on the dirty flows.  Completion events are rescheduled lazily: a
    heap entry is cancelled/re-pushed only when the flow's completion
    *time* actually changed.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        # Insertion-ordered (dict-as-set): Flow hashes by identity, so a
        # plain set iterates in memory-address order, which varies from
        # run to run and would make same-instant completions fire in a
        # nondeterministic order.
        self._flows: Dict[Flow, None] = {}
        self._last_update = 0.0
        # Persistent adjacency: resource -> insertion-ordered active
        # flows crossing it.  Maintained incrementally on start/stop so
        # recomputes don't rebuild it from scratch.
        self._res_flows: Dict[Resource, Dict[Flow, None]] = {}
        self._next_seq = 0
        self._n_solves = 0  # rate solves, for invariant-check sampling
        # Component-plan cache: activation-seq tuple -> _ComponentPlan,
        # or None for a membership seen exactly once (see the warm-up
        # note in _assign_rates).  Seqs are never reused, so entries
        # can never alias a different membership.
        self._comp_cache: Dict[Tuple[int, ...],
                               Optional[_ComponentPlan]] = {}
        self._vec_min = _VEC_MIN  # tests pin this to force either path
        self._plan_warmup = True  # tests clear to build plans eagerly
        # Single-seed dirty-component memo, cleared on any adjacency
        # change (start/stop).  Demand and capacity updates re-solve
        # the same membership over and over; the graph traversal (and
        # its activation-order sort) is pure overhead for those.
        self._dirty_cache: Dict[object, List[Flow]] = {}
        # Same-instant scan memos.  ``None`` means the next finished
        # scan / completion-reschedule pass must cover every flow;
        # a dict restricts it to the flows whose rate (or existence)
        # changed since the last full pass *at the current instant*.
        # Any time advance invalidates both (see _advance): with dt > 0
        # every armed completion time and the finished predicate shift
        # in floating point, so only a full pass is bit-faithful.
        self._scan_candidates: Optional[Dict[Flow, None]] = None
        self._resched_candidates: Optional[Dict[Flow, None]] = None

    # -- public API -------------------------------------------------------
    @property
    def flows(self) -> Set[Flow]:
        return set(self._flows)

    def start_flow(self, flow: Flow) -> Flow:
        """Activate *flow*; its :attr:`Flow.done` event fires on completion
        (finite flows only) with the completion time as value."""
        if flow._active:
            raise SimulationError("flow already active")
        for res in flow.resources:
            if res.network is not None and res.network is not self:
                raise SimulationError(
                    f"resource {res.name!r} belongs to another network")
        self._advance()
        flow._active = True
        flow.start_time = self.sim.now
        flow.done = self.sim.event()
        self._next_seq += 1
        flow._seq = self._next_seq
        res_flows = self._res_flows
        for res in flow.resources:
            if res.network is None:
                res.network = self
            fset = res_flows.get(res)
            if fset is None:
                fset = res_flows[res] = {}
            fset[flow] = None
        self._flows[flow] = None
        if self._dirty_cache:
            self._dirty_cache.clear()
        if _obs_context._ACTIVE is not None:
            _obs_context._ACTIVE.on_flow_start(self, flow)
        self._recompute(seed_flows=(flow,))
        return flow

    def transfer(self, resources: Sequence[Resource], size: float,
                 demand: float = math.inf, weight: float = 1.0,
                 usage: float | Dict[Resource, float] = 1.0,
                 label: str = "") -> Flow:
        """Convenience: create and start a finite flow."""
        flow = Flow(resources, size=size, demand=demand, weight=weight,
                    usage=usage, label=label)
        return self.start_flow(flow)

    def stop_flow(self, flow: Flow) -> float:
        """Deactivate *flow* (e.g. a continuous background flow); returns
        bytes transferred so far.

        Fires the ``on_flow_end`` telemetry hook with ``aborted=True``
        so stopped flows close their wire spans and keep the
        started/completed counters in step.

        Stopping a flow that is not active — never started, already
        stopped, or already *completed* — is an explicit no-op: the
        ``on_flow_end`` hook must not fire a second time (it would
        double-close the wire span and skew the started/completed
        counters), so only the ``fluid.stop_noops`` telemetry counter
        ticks and the transferred byte count is returned as-is."""
        if not flow._active:
            if _obs_context._ACTIVE is not None:
                _obs_context._ACTIVE.on_flow_stop_noop(self, flow)
            return flow.transferred
        self._advance()
        self._deactivate(flow)
        if _obs_context._ACTIVE is not None:
            _obs_context._ACTIVE.on_flow_end(self, flow, aborted=True)
        self._recompute(seed_resources=flow.resources)
        return flow.transferred

    def set_demand(self, flow: Flow, demand: float) -> None:
        """Change an *active* flow's demand cap and recompute the rates
        of its connected component."""
        if demand <= 0:
            raise ValueError("demand must be > 0")
        if not flow._active:
            raise SimulationError(
                f"set_demand on inactive flow {flow.label!r}")
        self._advance()
        flow.demand = float(demand)
        self._recompute(seed_flows=(flow,))

    def update(self, resource: Optional[Resource] = None) -> None:
        """Recompute rates after an external change.

        With *resource* given (a capacity update), only that resource's
        connected component is re-solved; without, every flow is."""
        self._advance()
        if resource is not None:
            self._recompute(seed_resources=(resource,))
        else:
            self._recompute(seed_flows=tuple(self._flows))

    def utilization(self, resource: Resource) -> float:
        """Fraction of *resource* capacity currently consumed (0..1+)."""
        fset = self._res_flows.get(resource)
        if not fset:
            return 0.0
        used = sum(f.rate * f.usage_on(resource) for f in fset)
        return used / resource.capacity

    def flows_through(self, resource: Resource) -> List[Flow]:
        return list(self._res_flows.get(resource, ()))

    # -- internals ----------------------------------------------------------
    def _advance(self) -> None:
        """Account transferred bytes since the last rate change."""
        now = self.sim.now
        dt = now - self._last_update
        if dt > 0:
            for flow in self._flows:
                # Skipping starved flows is bit-safe: x + 0.0 == x for
                # the non-negative byte counts accumulated here.
                if flow.rate:
                    flow.transferred += flow.rate * dt
            self._scan_candidates = None
            self._resched_candidates = None
        self._last_update = now

    def _deactivate(self, flow: Flow) -> None:
        flow._active = False
        flow.rate = 0.0
        if self._dirty_cache:
            self._dirty_cache.clear()
        if self._scan_candidates:
            self._scan_candidates.pop(flow, None)
        if self._resched_candidates:
            self._resched_candidates.pop(flow, None)
        if flow._completion_handle is not None:
            flow._completion_handle.cancel()
            flow._completion_handle = None
        self._flows.pop(flow, None)
        res_flows = self._res_flows
        for res in flow.resources:
            fset = res_flows.get(res)
            if fset is not None:
                fset.pop(flow, None)
                if not fset:
                    del res_flows[res]

    def _dirty_component(self, seed_flows: Sequence[Flow],
                         seed_resources: Sequence[Resource]) -> List[Flow]:
        """Flows (transitively) sharing a resource with the seeds.

        Traverses the flow↔resource adjacency and returns the union of
        the seeds' connected components in *activation order* — the
        order the global solver would visit them in.

        Single-seed queries (a capacity or demand update) are memoized
        until the next adjacency change: the component of a given seed
        cannot change while no flow starts or stops, so repeated
        updates of the same knob skip both the traversal and the
        activation-order sort.  Callers treat the returned list as
        read-only.
        """
        # Callers pass lists/tuples (sized), so the single-seed probe
        # is two len() calls on the miss path.
        key: Optional[object] = None
        if not seed_flows:
            if len(seed_resources) == 1:
                key = seed_resources[0]
        elif len(seed_flows) == 1 and not seed_resources:
            key = seed_flows[0]
        if key is not None:
            cached = self._dirty_cache.get(key)
            if cached is not None:
                return cached
        res_flows = self._res_flows
        dirty: Dict[Flow, None] = {}
        res_stack: List[Resource] = []
        seen_res: Set[Resource] = set()
        for flow in seed_flows:
            if flow._active and flow not in dirty:
                dirty[flow] = None
                res_stack.extend(flow.resources)
        res_stack.extend(seed_resources)
        while res_stack:
            res = res_stack.pop()
            if res in seen_res:
                continue
            seen_res.add(res)
            for flow in res_flows.get(res, ()):
                if flow not in dirty:
                    dirty[flow] = None
                    for r in flow.resources:
                        if r not in seen_res:
                            res_stack.append(r)
        if len(dirty) <= 1:
            component = list(dirty)
        else:
            component = sorted(dirty, key=_SEQ_KEY)
        if key is not None:
            self._dirty_cache[key] = component
        return component

    def _recompute(self, seed_flows: Sequence[Flow] = (),
                   seed_resources: Sequence[Resource] = ()) -> None:
        """Re-solve the dirty component(s) and fire completions.

        Completing a flow frees capacity, which can push other flows to
        completion at the same instant; loop until a fixed point.  The
        finished scan covers *all* active flows (not just the dirty
        component) in insertion order so that same-instant completions
        fire in exactly the deterministic order the global solver used.
        """
        pending_flows: List[Flow] = list(seed_flows)
        pending_res: List[Resource] = list(seed_resources)
        touched: Dict[Resource, None] = {}
        # Seed flows (new or demand-changed) are finish candidates even
        # before their first solve: a zero-size flow is done at start.
        scan_cands = self._scan_candidates
        if scan_cands is not None:
            for flow in pending_flows:
                scan_cands[flow] = None
        while True:
            # Complete every flow that is already done at this instant,
            # in insertion order, before re-solving: freed capacity
            # seeds further dirty components.
            finished = self._finished_flows()
            for flow in finished:
                pending_res.extend(flow.resources)
                self._complete(flow)
            if not (pending_flows or pending_res):
                break
            # Seed resources count as touched even when no remaining
            # flow crosses them (a stopped/completed flow's wire drops
            # to zero and must still be re-sampled by telemetry).
            for res in pending_res:
                touched[res] = None
            dirty = self._dirty_component(pending_flows, pending_res)
            pending_flows = []
            pending_res = []
            self._assign_rates(dirty, touched)
            # Freshly solved flows are the only ones whose finish
            # predicate or completion time can move at this instant.
            scan_cands = self._scan_candidates
            if scan_cands is not None:
                for flow in dirty:
                    scan_cands[flow] = None
            resched_cands = self._resched_candidates
            if resched_cands is not None:
                for flow in dirty:
                    resched_cands[flow] = None
            if _inv.ENABLED:
                self._check_invariants(dirty)
        self._reschedule_completions()
        if _obs_context._ACTIVE is not None:
            _obs_context._ACTIVE.on_rates_changed(self, touched)

    def _finished_flows(self) -> List[Flow]:
        """Active flows whose remainder is numerically done, in
        insertion order (the inlined hot-loop form of
        :meth:`_is_finished`)."""
        # At an unchanged instant only candidate flows (rate changed or
        # newly seeded since the last scan) can newly satisfy the
        # predicate; everything else was scanned-and-rejected with
        # bitwise-identical operands.  Insertion order == activation
        # order, so a seq sort restores the full scan's visit order.
        cands = self._scan_candidates
        if cands is None:
            flows: Sequence[Flow] = self._flows
            self._scan_candidates = {}
        elif not cands:
            # Nothing became a candidate since the last scan (the
            # common second pass of a _recompute round-trip).
            return []
        elif len(cands) > 1:
            flows = sorted(cands, key=_SEQ_KEY)
            cands.clear()
        else:
            flows = list(cands)
            cands.clear()
        # Representable-time floor at the current instant, hoisted out
        # of the per-flow check (see _is_finished).
        time_floor = max(1e-12, 8.0 * abs(self.sim.now) * 2.3e-16)
        finished = []
        for flow in flows:
            size = flow.size
            if size is None:
                continue
            remaining = size - flow.transferred
            if remaining <= flow._finish_eps or (
                    flow.rate > 0
                    and remaining <= flow.rate * time_floor):
                finished.append(flow)
        return finished

    def _is_finished(self, flow: Flow) -> bool:
        """True when the flow's remainder is numerically done.

        Two criteria: the byte remainder is within relative epsilon of
        the size, or the time needed to drain it at the current rate is
        below the representable time increment at the current simulated
        time (otherwise completion events would stop advancing time and
        livelock the event loop).
        """
        remaining = flow.remaining
        if remaining is None:
            return False
        if remaining <= flow._finish_eps:
            return True
        if flow.rate > 0:
            time_floor = max(1e-12, 8.0 * abs(self.sim.now) * 2.3e-16)
            return remaining <= flow.rate * time_floor
        return False

    def _assign_rates(self, dirty: List[Flow],
                      touched: Dict[Resource, None]) -> None:
        """Weighted max-min fair allocation via progressive filling,
        restricted to the *dirty* component(s).

        Dispatches on component size: large components run the
        vectorized solver over a cached :class:`_ComponentPlan`, small
        ones the scalar reference.  The two are arithmetic twins —
        every sum, product, comparison and clamp happens in the same
        order with the same operands — so the choice never changes a
        single bit of the resulting rates.
        """
        n = len(dirty)
        if n < self._vec_min:
            if n == 0:
                return None
            if n == 1:
                return self._assign_rates_one(dirty[0], touched)
            if n == 2:
                return self._assign_rates_two(dirty, touched)
        key = tuple(f._seq for f in dirty)
        cache = self._comp_cache
        plan = cache.get(key, False)
        if plan is False and self._plan_warmup:
            # First sighting of this membership: solve without a plan
            # and only mark the key.  Churn-once components (a burst of
            # starts that never re-solves the same membership) never pay
            # for a plan build; the second solve does, and every one
            # after that amortizes it.
            if len(cache) >= _PLAN_CACHE_MAX:
                cache.clear()
            cache[key] = None
            if n < self._vec_min:
                return self._assign_rates_small(dirty, touched)
            return self._assign_rates_scalar(dirty, touched)
        if not plan:
            if len(cache) >= _PLAN_CACHE_MAX:
                cache.clear()
            plan = cache[key] = (_SmallPlan(dirty) if n < self._vec_min
                                 else _ComponentPlan(dirty))
        if type(plan) is _SmallPlan:
            self._assign_rates_small_plan(touched, plan)
        else:
            self._assign_rates_vector(touched, plan)

    def _assign_rates_one(self, flow: Flow,
                          touched: Dict[Resource, None]) -> None:
        """Closed-form allocation for a single-flow component.

        Arithmetic twin of :meth:`_assign_rates_scalar` on a one-flow
        dirty list: the water level collapses to the minimum
        ``capacity / (weight·usage)`` over the flow's (distinct)
        resources, compared against the demand with the identical
        ``(1 + _REL_TOL)`` guard, so the resulting rate is bit-equal.
        """
        if not flow.resources:
            flow.rate = flow.demand
            return
        self._solve_single(flow, touched)

    def _solve_single(self, flow: Flow,
                      touched: Dict[Resource, None]) -> None:
        """Rate for one flow with a non-empty path (shared by the 1- and
        2-flow fast paths).  Duplicate resources in the path keep the
        scalar solver's dict semantics: the *last* ``weight·usage``
        product wins."""
        weight = flow.weight
        index: Dict[Resource, int] = {}
        res_list: List[Resource] = []
        prods: List[float] = []
        for res, wu in zip(flow.resources, flow._usages):
            i = index.get(res)
            if i is None:
                index[res] = len(res_list)
                res_list.append(res)
                prods.append(weight * wu)
                touched[res] = None
            else:
                prods[i] = weight * wu
        level = math.inf
        for i, prod in enumerate(prods):
            if prod <= 0:
                continue
            lvl = res_list[i].capacity / prod
            if lvl < level:
                level = lvl
        if not math.isfinite(level):
            if not math.isfinite(flow.demand):
                raise SimulationError(
                    f"flow {flow.label!r} has unbounded rate")
            rate = flow.demand
        elif flow.demand <= weight * level * (1 + _REL_TOL):
            rate = flow.demand
        else:
            rate = weight * level
        flow.rate = rate if rate > 0.0 else 0.0

    def _assign_rates_two(self, dirty: List[Flow],
                          touched: Dict[Resource, None]) -> None:
        """Progressive filling specialised to a two-flow component.

        Mirrors :meth:`_assign_rates_scalar` step for step on parallel
        lists instead of dicts-of-dicts: same resource visit order
        (first flow's path first), same two-term denominators (summed
        first-flow-first, matching dict insertion order), same
        demand-vs-bottleneck freeze order and the same residual
        capacity debit order — so every rounding decision is identical
        and the result is bit-equal to the reference solver.
        """
        remaining = []
        for flow in dirty:
            if not flow.resources:
                flow.rate = flow.demand
            else:
                remaining.append(flow)
        if not remaining:
            return
        if len(remaining) == 1:
            return self._solve_single(remaining[0], touched)

        index: Dict[Resource, int] = {}
        res_list: List[Resource] = []
        avail: List[float] = []
        prods: List[List[Optional[float]]] = []
        paths: Tuple[List[Tuple[int, float]], List[Tuple[int, float]]] = \
            ([], [])
        for k in (0, 1):
            flow = remaining[k]
            weight = flow.weight
            path = paths[k]
            for res, wu in zip(flow.resources, flow._usages):
                i = index.get(res)
                if i is None:
                    i = index[res] = len(res_list)
                    res_list.append(res)
                    avail.append(res.capacity)
                    prods.append([None, None])
                    touched[res] = None
                prods[i][k] = weight * wu
                path.append((i, wu))

        fixed = [False, False]
        n_res = len(res_list)

        def fix(k: int, rate: float) -> None:
            flow = remaining[k]
            flow.rate = rate = rate if rate > 0.0 else 0.0
            for i, usage in paths[k]:
                left = avail[i] - rate * usage
                avail[i] = left if left > 0.0 else 0.0
            fixed[k] = True

        while True:
            level = math.inf
            for i in range(n_res):
                pa, pb = prods[i]
                if pa is None or fixed[0]:
                    if pb is None or fixed[1]:
                        continue
                    denom = pb
                elif pb is None or fixed[1]:
                    denom = pa
                else:
                    denom = pa + pb
                if denom <= 0:
                    continue
                lvl = avail[i] / denom
                if lvl < level:
                    level = lvl
            if not math.isfinite(level):
                for k in (0, 1):
                    if fixed[k]:
                        continue
                    flow = remaining[k]
                    if not math.isfinite(flow.demand):
                        raise SimulationError(
                            f"flow {flow.label!r} has unbounded rate")
                    fix(k, flow.demand)
                break

            # NB: the demand guard must round exactly like the scalar
            # solver's left-associative ``weight * level * (1 + tol)``;
            # the bottleneck guard below hoists ``level * (1 + tol)``
            # because the scalar compare is written that way too.
            demand_limited = [
                k for k in (0, 1)
                if not fixed[k]
                and remaining[k].demand
                <= remaining[k].weight * level * (1 + _REL_TOL)]
            guard = level * (1 + _REL_TOL)
            if demand_limited:
                for k in demand_limited:
                    fix(k, remaining[k].demand)
                if fixed[0] and fixed[1]:
                    break
                continue

            froze = False
            for i in range(n_res):
                pa, pb = prods[i]
                members = [k for k in (0, 1)
                           if prods[i][k] is not None and not fixed[k]]
                if not members:
                    continue
                if len(members) == 2:
                    denom = pa + pb
                else:
                    denom = prods[i][members[0]]
                if denom <= 0:
                    continue
                if avail[i] / denom <= guard:
                    for k in members:
                        if not fixed[k]:
                            fix(k, remaining[k].weight * level)
                            froze = True
            if not froze:  # pragma: no cover - numerical safety net
                for k in (0, 1):
                    if not fixed[k]:
                        fix(k, remaining[k].weight * level)
            if fixed[0] and fixed[1]:
                break

    def _assign_rates_small(self, dirty: List[Flow],
                            touched: Dict[Resource, None]) -> None:
        """List-based progressive filling for mid-size components
        (``2 < n < _vec_min``, and the 2-flow fallback's peer).

        The dict-of-dicts machinery of :meth:`_assign_rates_scalar`
        dominates its runtime for components of a handful of flows;
        this twin keeps every float operation — denominator summation
        order (slot order == dirty order == fset insertion order),
        freeze order, residual debit order and all ``(1 + _REL_TOL)``
        guards — bit-identical while replacing the dict churn with
        parallel lists indexed by flow slot and resource index.
        """
        flows: List[Flow] = []
        for flow in dirty:
            if not flow.resources:
                flow.rate = flow.demand
            else:
                flows.append(flow)
        n = len(flows)
        if n == 0:
            return
        if n == 1:
            return self._solve_single(flows[0], touched)

        index: Dict[Resource, int] = {}
        res_list: List[Resource] = []
        avail: List[float] = []
        members: List[List[Tuple[int, float]]] = []
        paths: List[List[Tuple[int, float]]] = []
        weights: List[float] = []
        demands: List[float] = []
        for k, flow in enumerate(flows):
            weight = flow.weight
            weights.append(weight)
            demands.append(flow.demand)
            path: List[Tuple[int, float]] = []
            paths.append(path)
            for res, wu in zip(flow.resources, flow._usages):
                i = index.get(res)
                if i is None:
                    i = index[res] = len(res_list)
                    res_list.append(res)
                    avail.append(res.capacity)
                    members.append([])
                    touched[res] = None
                members[i].append((k, weight * wu))
                path.append((i, wu))

        fixed = [False] * n
        n_res = len(res_list)
        unfixed_left = n
        tol = 1 + _REL_TOL

        while unfixed_left:
            level = math.inf
            for i in range(n_res):
                denom = 0.0
                for k, prod in members[i]:
                    if not fixed[k]:
                        denom += prod
                if denom <= 0:
                    continue
                lvl = avail[i] / denom
                if lvl < level:
                    level = lvl
            if not math.isfinite(level):
                for k in range(n):
                    if fixed[k]:
                        continue
                    rate = demands[k]
                    if not math.isfinite(rate):
                        raise SimulationError(
                            f"flow {flows[k].label!r} has unbounded rate")
                    flows[k].rate = rate = rate if rate > 0.0 else 0.0
                    for i, usage in paths[k]:
                        left = avail[i] - rate * usage
                        avail[i] = left if left > 0.0 else 0.0
                    fixed[k] = True
                    unfixed_left -= 1
                break

            demand_limited = [
                k for k in range(n)
                if not fixed[k] and demands[k] <= weights[k] * level * tol]
            if demand_limited:
                for k in demand_limited:
                    rate = demands[k]
                    flows[k].rate = rate = rate if rate > 0.0 else 0.0
                    for i, usage in paths[k]:
                        left = avail[i] - rate * usage
                        avail[i] = left if left > 0.0 else 0.0
                    fixed[k] = True
                    unfixed_left -= 1
                continue

            guard = level * tol
            froze = False
            for i in range(n_res):
                mem = members[i]
                denom = 0.0
                for k, prod in mem:
                    if not fixed[k]:
                        denom += prod
                if denom <= 0:
                    continue
                if avail[i] / denom <= guard:
                    for k, _prod in mem:
                        if not fixed[k]:
                            rate = weights[k] * level
                            flows[k].rate = rate = rate if rate > 0.0 else 0.0
                            for j, usage in paths[k]:
                                left = avail[j] - rate * usage
                                avail[j] = left if left > 0.0 else 0.0
                            fixed[k] = True
                            unfixed_left -= 1
                            froze = True
            if not froze:  # pragma: no cover - numerical safety net
                for k in range(n):
                    if not fixed[k]:
                        rate = weights[k] * level
                        flows[k].rate = rate = rate if rate > 0.0 else 0.0
                        for i, usage in paths[k]:
                            left = avail[i] - rate * usage
                            avail[i] = left if left > 0.0 else 0.0
                        fixed[k] = True
                        unfixed_left -= 1

    def _assign_rates_small_plan(self, touched: Dict[Resource, None],
                                 plan: _SmallPlan) -> None:
        """Progressive filling over a cached :class:`_SmallPlan`.

        Same float operations as :meth:`_assign_rates_small` (and thus
        the scalar reference), minus the per-solve rebuild of the
        resource table and member/path lists.  Only capacities and
        demands are read live.
        """
        for flow in plan.empty:
            flow.rate = flow.demand
        flows = plan.flows
        n = len(flows)
        if n == 0:
            return
        res_list = plan.resources
        avail = [res.capacity for res in res_list]
        for res in res_list:
            touched[res] = None
        members = plan.members
        paths = plan.paths
        n_res = len(res_list)
        fixed = [False] * n
        unfixed_left = n

        while unfixed_left:
            level = math.inf
            for i in range(n_res):
                denom = 0.0
                for k, prod in members[i]:
                    if not fixed[k]:
                        denom += prod
                if denom <= 0:
                    continue
                lvl = avail[i] / denom
                if lvl < level:
                    level = lvl
            if not math.isfinite(level):
                for k in range(n):
                    if fixed[k]:
                        continue
                    flow = flows[k]
                    if not math.isfinite(flow.demand):
                        raise SimulationError(
                            f"flow {flow.label!r} has unbounded rate")
                    rate = flow.demand
                    flow.rate = rate = rate if rate > 0.0 else 0.0
                    for i, usage in paths[k]:
                        left = avail[i] - rate * usage
                        avail[i] = left if left > 0.0 else 0.0
                    fixed[k] = True
                    unfixed_left -= 1
                break

            demand_limited = [
                k for k in range(n)
                if not fixed[k]
                and flows[k].demand <= flows[k].weight * level * (1 + _REL_TOL)]
            if demand_limited:
                for k in demand_limited:
                    flow = flows[k]
                    rate = flow.demand
                    flow.rate = rate = rate if rate > 0.0 else 0.0
                    for i, usage in paths[k]:
                        left = avail[i] - rate * usage
                        avail[i] = left if left > 0.0 else 0.0
                    fixed[k] = True
                    unfixed_left -= 1
                continue

            guard = level * (1 + _REL_TOL)
            froze = False
            for i in range(n_res):
                mem = members[i]
                denom = 0.0
                for k, prod in mem:
                    if not fixed[k]:
                        denom += prod
                if denom <= 0:
                    continue
                if avail[i] / denom <= guard:
                    for k, _prod in mem:
                        if not fixed[k]:
                            flow = flows[k]
                            rate = flow.weight * level
                            flow.rate = rate = rate if rate > 0.0 else 0.0
                            for ii, usage in paths[k]:
                                left = avail[ii] - rate * usage
                                avail[ii] = left if left > 0.0 else 0.0
                            fixed[k] = True
                            unfixed_left -= 1
                            froze = True
            if not froze:  # pragma: no cover - numerical safety net
                for k in range(n):
                    if not fixed[k]:
                        flow = flows[k]
                        rate = flow.weight * level
                        flow.rate = rate = rate if rate > 0.0 else 0.0
                        for i, usage in paths[k]:
                            left = avail[i] - rate * usage
                            avail[i] = left if left > 0.0 else 0.0
                        fixed[k] = True
                        unfixed_left -= 1

    def _assign_rates_scalar(self, dirty: List[Flow],
                             touched: Dict[Resource, None]) -> None:
        """The dict-based reference solver (pre-vectorization form).

        All working collections are insertion-ordered dicts-as-sets so
        the freezing order — and with it the floating-point rounding of
        the residual-capacity subtractions — is identical on every run.
        Restricting the pass to a connected component preserves that
        order: a component's flows only ever compete among themselves,
        so the sequence of capacity subtractions on its resources is
        the same one a global pass performs.

        Retained both as the fast path for small components and as the
        executable reference the sampled invariant check re-solves
        with (see :meth:`_check_invariants`).
        """
        unfixed: Dict[Flow, None] = dict.fromkeys(dirty)
        # Flows with an empty path are only demand-limited.
        for flow in list(unfixed):
            if not flow.resources:
                flow.rate = flow.demand
                unfixed.pop(flow, None)

        avail: Dict[Resource, float] = {}
        res_flows: Dict[Resource, Dict[Flow, float]] = {}
        for flow in unfixed:
            for res, wu in zip(flow.resources, flow._usages):
                fset = res_flows.get(res)
                if fset is None:
                    avail[res] = res.capacity
                    fset = res_flows[res] = {}
                    touched[res] = None
                fset[flow] = flow.weight * wu

        while unfixed:
            # Water level at which each resource would saturate.  The
            # per-resource Σ weight·usage denominators are sums over the
            # cached per-flow products stored in res_flows, so no usage
            # lookups happen in this hot loop.
            level = math.inf
            for res, fset in res_flows.items():
                if not fset:
                    continue
                denom = sum(fset.values())
                if denom <= 0:
                    continue
                lvl = avail[res] / denom
                if lvl < level:
                    level = lvl
            if not math.isfinite(level):
                # No binding resource: every remaining flow must be
                # demand-limited (paths through inf-capacity resources
                # cannot occur because capacities are finite; this happens
                # only when all remaining resources have no flows).
                for flow in unfixed:
                    if not math.isfinite(flow.demand):
                        raise SimulationError(
                            f"flow {flow.label!r} has unbounded rate")
                    self._fix(flow, flow.demand, avail, res_flows)
                unfixed.clear()
                break

            # Demand-limited flows below the water level are frozen first.
            demand_limited = [f for f in unfixed
                              if f.demand <= f.weight * level * (1 + _REL_TOL)]
            if demand_limited:
                for flow in demand_limited:
                    self._fix(flow, flow.demand, avail, res_flows)
                    unfixed.pop(flow, None)
                continue

            # Otherwise freeze every flow crossing a bottleneck resource.
            # Denominators are recomputed per resource: an earlier freeze
            # in this same pass pops flows, which must be reflected (and
            # keeps the rounding identical to the original solver).
            froze = False
            for res, fset in list(res_flows.items()):
                if not fset:
                    continue
                denom = sum(fset.values())
                if denom <= 0:
                    continue
                if avail[res] / denom <= level * (1 + _REL_TOL):
                    for flow in list(fset):
                        if flow in unfixed:
                            self._fix(flow, flow.weight * level,
                                      avail, res_flows)
                            unfixed.pop(flow, None)
                            froze = True
            if not froze:  # pragma: no cover - numerical safety net
                for flow in list(unfixed):
                    self._fix(flow, flow.weight * level, avail, res_flows)
                unfixed.clear()

    @staticmethod
    def _fix(flow: Flow, rate: float,
             avail: Dict[Resource, float],
             res_flows: Dict[Resource, Dict[Flow, float]]) -> None:
        flow.rate = rate if rate > 0.0 else 0.0
        for res, usage in zip(flow.resources, flow._usages):
            left = avail[res] - flow.rate * usage
            avail[res] = left if left > 0.0 else 0.0
            res_flows[res].pop(flow, None)

    def _assign_rates_vector(self, touched: Dict[Resource, None],
                             plan: _ComponentPlan) -> None:
        """Progressive filling over the component's array layout.

        Arithmetic twin of :meth:`_assign_rates_scalar` (see the
        dispatch note in :meth:`_assign_rates`): denominators are
        left-to-right ``np.cumsum`` sums over the ``W`` rows with fixed
        flows zeroed (adding 0.0 is exact for the non-negative products
        here), the water level is an order-independent exact ``min``,
        and the per-flow residual-capacity subtractions of
        :meth:`_fix_vec` stay sequential in the scalar solver's freeze
        order — those are the only order-dependent roundings.
        """
        for flow in plan.empty:
            flow.rate = flow.demand
        for res in plan.resources:
            touched[res] = None
        flows = plan.flows
        nf = len(flows)
        if not nf:
            return
        demand_l = [f.demand for f in flows]
        demand = np.array(demand_l)
        weights_l = plan.weights_l
        W = plan.W
        M = plan.M
        # Residual capacities live in a plain Python list: the debits
        # of _fix_vec are sequential scalar float ops (order-dependent
        # rounding — the bit-identity constraint), and list indexing
        # beats numpy scalar indexing severalfold there.  The array
        # view is materialized once per water level below.
        avail_l = [r._capacity for r in plan.resources]
        active = np.ones(nf, dtype=bool)
        n_active = nf
        one_rel = 1.0 + _REL_TOL
        while n_active:
            denom = np.cumsum(W * active, axis=1)[:, -1]
            pos = denom > 0.0
            if pos.any():
                avail = np.array(avail_l)
                level = float((avail[pos] / denom[pos]).min())
            else:
                level = math.inf
            if not math.isfinite(level):
                # No binding resource left: remaining flows must be
                # demand-limited.  Fix in activation order, raising at
                # the first unbounded flow exactly like the scalar.
                for j in np.nonzero(active)[0].tolist():
                    d = demand_l[j]
                    if not math.isfinite(d):
                        raise SimulationError(
                            f"flow {flows[j].label!r} has unbounded rate")
                    self._fix_vec(plan, j, d, avail_l, active)
                break

            # Demand-limited flows below the water level freeze first.
            limited = active & (demand <= plan.weights * level * one_rel)
            if limited.any():
                fixed = np.nonzero(limited)[0].tolist()
                for j in fixed:
                    self._fix_vec(plan, j, demand_l[j], avail_l, active)
                n_active -= len(fixed)
                continue

            # Otherwise freeze every flow crossing a bottleneck
            # resource, re-deriving each row's denominator after the
            # freezes of earlier rows in this same pass.
            threshold = level * one_rel
            froze = 0
            for i in range(len(plan.resources)):
                members = M[i] & active
                if not members.any():
                    continue
                denom_i = np.cumsum(W[i] * members)[-1]
                if denom_i <= 0.0:
                    continue
                if avail_l[i] / denom_i <= threshold:
                    for j in np.nonzero(members)[0].tolist():
                        self._fix_vec(plan, j, weights_l[j] * level,
                                      avail_l, active)
                        froze += 1
            if froze:
                n_active -= froze
            else:  # pragma: no cover - numerical safety net
                for j in np.nonzero(active)[0].tolist():
                    self._fix_vec(plan, j, weights_l[j] * level,
                                  avail_l, active)
                n_active = 0

    @staticmethod
    def _fix_vec(plan: _ComponentPlan, j: int, rate: float,
                 avail_l: List[float], active: np.ndarray) -> None:
        """Freeze plan flow *j* at *rate* and debit its path's capacity
        (same clamp and operand order as :meth:`_fix`).

        The debit loop is scalar Python over the plan's ``(resource
        index, usage)`` pairs and a plain-list ``avail_l``: its
        rounding is order-dependent (that is the whole bit-identity
        constraint), so it cannot be batched, and numpy indexing would
        only add dispatch overhead to scalar float arithmetic that is
        already bit-exact against the scalar solver's dicts.
        """
        r = rate if rate > 0.0 else 0.0
        plan.flows[j].rate = r
        for i, u in plan.paths[j]:
            left = avail_l[i] - r * u
            avail_l[i] = left if left > 0.0 else 0.0
        active[j] = False

    # -- runtime self-checks (--check-invariants) --------------------------
    def _component_of(self, flow: Optional[Flow] = None,
                      resource: Optional[Resource] = None) -> str:
        """Human-readable name of the connected component a culprit
        flow/resource belongs to, for :class:`InvariantViolation`
        diagnostics."""
        comp = self._dirty_component(
            (flow,) if flow is not None else (),
            (resource,) if resource is not None else ())
        labels = [f.label or "anon" for f in comp]
        shown = ", ".join(labels[:6])
        if len(labels) > 6:
            shown += f", … +{len(labels) - 6} more"
        return f"component[{len(labels)} flows: {shown}]"

    def _check_invariants(self, dirty: List[Flow]) -> None:
        """Verify the solver's bookkeeping after a rate solve.

        Cheap checks run on every solve: per-flow usage caches agree
        with the authoritative usage maps, rates are finite,
        non-negative and demand-capped, and no resource's capacity is
        exceeded (computed from :meth:`Flow.usage_on`, *not* the cache,
        so a corrupted cache is caught by the first check rather than
        masked).  Every ``SAMPLE_EVERY``-th solve additionally re-runs
        progressive filling globally and cross-checks every active
        flow's rate **bitwise** — the incremental dirty-component
        invariant of DESIGN.md made executable.
        """
        self._n_solves += 1
        if _obs_context._ACTIVE is not None:
            _obs_context._ACTIVE.on_invariant_check()
        n = len(dirty)
        if n >= self._vec_min:
            # Batched form of the per-flow checks below, so the guard
            # stays affordable on the components the vectorized solver
            # targets.  The per-flow loops only run to name a culprit.
            rates = np.fromiter((f.rate for f in dirty), float, n)
            demands = np.fromiter((f.demand for f in dirty), float, n)
            if (~np.isfinite(rates) | (rates < 0.0)).any():
                for flow in dirty:
                    rate = flow.rate
                    if not math.isfinite(rate) or rate < 0.0:
                        self._violation(
                            f"flow {flow.label or 'anon'!r} has invalid "
                            f"rate {rate!r} in "
                            f"{self._component_of(flow=flow)}")
            if (rates > demands * (1.0 + _REL_TOL)).any():
                for flow in dirty:
                    if flow.rate > flow.demand * (1.0 + _REL_TOL):
                        self._violation(
                            f"flow {flow.label or 'anon'!r} rate "
                            f"{flow.rate!r} exceeds its demand cap "
                            f"{flow.demand!r} in "
                            f"{self._component_of(flow=flow)}")
            for flow in dirty:
                self._check_usage_cache(flow)
        else:
            for flow in dirty:
                self._check_usage_cache(flow)
                rate = flow.rate
                if not math.isfinite(rate) or rate < 0.0:
                    self._violation(
                        f"flow {flow.label or 'anon'!r} has invalid rate "
                        f"{rate!r} in {self._component_of(flow=flow)}")
                if rate > flow.demand * (1.0 + _REL_TOL):
                    self._violation(
                        f"flow {flow.label or 'anon'!r} rate {rate!r} "
                        f"exceeds its demand cap {flow.demand!r} in "
                        f"{self._component_of(flow=flow)}")
        seen_res: Set[Resource] = set()
        for flow in dirty:
            for res in flow.resources:
                if res in seen_res:
                    continue
                seen_res.add(res)
                used = sum(f.rate * f.usage_on(res)
                           for f in self._res_flows.get(res, ()))
                if used > res.capacity * (1.0 + _REL_TOL):
                    self._violation(
                        f"resource {res.name!r} over capacity: "
                        f"{used!r} > {res.capacity!r} in "
                        f"{self._component_of(resource=res)}")
        if self._n_solves % _inv.SAMPLE_EVERY == 0 and self._flows:
            snapshot = [(f, f.rate) for f in self._flows]
            # The reference re-solve is always the scalar solver: the
            # cross-check then validates both the incremental-component
            # invariant *and* (when the dirty solve ran vectorized) the
            # scalar/vector bit-identity contract in one comparison.
            self._assign_rates_scalar(
                sorted(self._flows, key=_SEQ_KEY), {})
            for flow, incremental in snapshot:
                if flow.rate != incremental:
                    globally = flow.rate
                    flow.rate = incremental  # leave state as found
                    self._violation(
                        f"incremental solve diverged from global solve for "
                        f"flow {flow.label or 'anon'!r}: component gave "
                        f"{incremental!r}, from-scratch gave {globally!r} "
                        f"in {self._component_of(flow=flow)}")

    def _check_usage_cache(self, flow: Flow) -> None:
        """Verify one flow's cached per-resource usage multipliers
        against the authoritative usage map/scalar."""
        if flow._usage_map is None:
            # Scalar usage (the overwhelmingly common case): the cache
            # must be the scalar repeated per path resource — checked
            # without re-resolving usage_on per resource.
            scalar = flow._usage_scalar
            ok = all(u == scalar for u in flow._usages)
        else:
            ok = flow._usages == tuple(
                flow.usage_on(res) for res in flow.resources)
        if not ok:
            expected = tuple(flow.usage_on(res) for res in flow.resources)
            self._violation(
                f"usage cache of flow {flow.label or 'anon'!r} is "
                f"corrupted: cached {flow._usages!r} != authoritative "
                f"{expected!r} in {self._component_of(flow=flow)}")

    def _violation(self, message: str) -> None:
        if _obs_context._ACTIVE is not None:
            _obs_context._ACTIVE.on_invariant_violation()
        raise _inv.InvariantViolation(message)

    def _reschedule_completions(self) -> None:
        """(Re)arm completion events, reusing heap entries lazily.

        A flow's completion entry is cancelled/re-pushed only when its
        freshly computed completion *time* differs from the armed one —
        same-instant recompute bursts and unrelated components cost no
        heap churn at all.
        """
        sim = self.sim
        now = sim.now
        # Restricted pass: at an unchanged instant a flow with an
        # unchanged rate recomputes a bitwise-identical ``when`` and
        # would hit the handle.time == when no-op below, consuming no
        # sequence number — so skipping it outright cannot perturb the
        # heap.  Any time advance forces the full pass (see _advance).
        cands = self._resched_candidates
        if cands is None:
            flows: Sequence[Flow] = self._flows
            self._resched_candidates = {}
        elif not cands:
            return
        elif len(cands) > 1:
            flows = sorted(cands, key=_SEQ_KEY)
            cands.clear()
        else:
            flows = list(cands)
            cands.clear()
        for flow in flows:
            if flow.size is None:
                continue
            handle = flow._completion_handle
            if flow.rate <= 0:
                # Starved: rescheduled on the next update.
                if handle is not None:
                    handle.cancel()
                    flow._completion_handle = None
                continue
            remaining = flow.size - flow.transferred
            if remaining < 0.0:
                remaining = 0.0
            eta = remaining / flow.rate
            when = now + eta
            if handle is not None:
                if handle.time == when:
                    continue  # unchanged: reuse the armed entry
                flow._completion_handle = sim.reschedule(
                    handle, when, self._on_completion, flow)
            else:
                flow._completion_handle = sim.schedule_at(
                    when, self._on_completion, flow)

    def _on_completion(self, flow: Flow) -> None:
        flow._completion_handle = None
        self._advance()
        # Whatever happens next, this flow is the one whose completion
        # state just moved: make sure the restricted same-instant scans
        # consider it (its handle is gone, so the handle.time == when
        # skip can no longer protect it).
        if self._scan_candidates is not None:
            self._scan_candidates[flow] = None
        if self._resched_candidates is not None:
            self._resched_candidates[flow] = None
        if not self._is_finished(flow):
            # Rates changed under us; reschedule this flow's completion.
            self._reschedule_completions()
            return
        # The finished scan inside _recompute completes *flow* (and any
        # other flow due at this instant) in insertion order.
        self._recompute()

    def _complete(self, flow: Flow) -> None:
        flow.transferred = flow.size if flow.size is not None else flow.transferred
        done = flow.done
        self._deactivate(flow)
        if _obs_context._ACTIVE is not None:
            _obs_context._ACTIVE.on_flow_end(self, flow)
        if done is not None and not done.triggered:
            done.succeed(self.sim.now)
