"""Event primitives for the discrete-event engine.

An :class:`Event` is a one-shot synchronisation point: it starts
*pending*, is *triggered* exactly once with a value (or an exception) and
then invokes its callbacks.  Processes wait on events by ``yield``-ing
them (see :mod:`repro.sim.engine`).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional

__all__ = ["Event", "Timeout", "AllOf", "AnyOf", "Interrupt"]


class Interrupt(Exception):
    """Raised inside a process that is interrupted by another process."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """One-shot event.

    Parameters
    ----------
    sim:
        The owning :class:`~repro.sim.engine.Simulator`.  Only needed when
        the event is triggered via :meth:`succeed`/:meth:`fail` so that the
        callbacks run inside the event loop; a bare container event can be
        created with ``sim=None`` and triggered manually.
    """

    __slots__ = ("sim", "_value", "_exception", "_triggered", "_processed", "callbacks")

    def __init__(self, sim=None):
        self.sim = sim
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._triggered = False
        self._processed = False
        self.callbacks: List[Callable[["Event"], None]] = []

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only once triggered)."""
        return self._triggered and self._exception is None

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise RuntimeError("event value read before trigger")
        if self._exception is not None:
            raise self._exception
        return self._value

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with *value*."""
        if self._triggered:
            raise RuntimeError(f"{self!r} already triggered")
        self._triggered = True
        self._value = value
        self._dispatch()
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Processes waiting on the event will see the exception raised at
        their ``yield`` statement.
        """
        if self._triggered:
            raise RuntimeError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._exception = exception
        self._dispatch()
        return self

    def _dispatch(self) -> None:
        if self.sim is not None:
            self.sim._schedule_event(self)
        else:
            self._run_callbacks()

    def _run_callbacks(self) -> None:
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        """Run *cb(event)* when the event is processed (immediately if it
        already has been)."""
        if self._processed:
            cb(self)
        else:
            self.callbacks.append(cb)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self._processed else (
            "triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """Event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, sim, delay: float, value: Any = None,
                 daemon: bool = False):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(sim)
        self.delay = float(delay)
        sim.schedule(delay, self._fire, value, daemon=daemon)

    def _fire(self, value: Any) -> None:
        self._triggered = True
        self._value = value
        self._run_callbacks()


class AllOf(Event):
    """Fires when *all* child events have fired.

    The value is the list of child values in the order given.  If any
    child fails, this event fails with the first failure.
    """

    __slots__ = ("_children", "_remaining")

    def __init__(self, sim, events: Iterable[Event]):
        super().__init__(sim)
        self._children = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for ev in self._children:
            ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self._triggered:
            return
        if not ev.ok:
            self.fail(ev._exception)  # noqa: SLF001 - same module family
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([c.value for c in self._children])


class AnyOf(Event):
    """Fires when the *first* child event fires; value is ``(index, value)``."""

    __slots__ = ("_children",)

    def __init__(self, sim, events: Iterable[Event]):
        super().__init__(sim)
        self._children = list(events)
        if not self._children:
            raise ValueError("AnyOf requires at least one event")
        for idx, ev in enumerate(self._children):
            ev.add_callback(lambda e, i=idx: self._on_child(i, e))

    def _on_child(self, idx: int, ev: Event) -> None:
        if self._triggered:
            return
        if not ev.ok:
            self.fail(ev._exception)  # noqa: SLF001
            return
        self.succeed((idx, ev.value))
