"""Deterministic discrete-event simulation engine.

The engine keeps a binary heap of ``(time, seq, callback)`` entries.  The
monotonically increasing sequence number makes execution order of
same-time events deterministic (FIFO), which in turn makes every
experiment in this repository reproducible bit-for-bit.

Processes are plain Python generators.  A process may ``yield``:

* a ``float``/``int`` — sleep for that many simulated seconds;
* an :class:`~repro.sim.events.Event` — wait until it triggers (its value
  becomes the value of the ``yield`` expression; a failed event raises);
* another :class:`Process` — wait for it to finish (a ``Process`` *is* an
  event that triggers with the generator's return value).

Example
-------
>>> sim = Simulator()
>>> out = []
>>> def worker(sim):
...     yield 1.5
...     out.append(sim.now)
...     return "done"
>>> p = sim.process(worker(sim))
>>> sim.run()
>>> out
[1.5]
>>> p.value
'done'

Engine internals (heap hygiene and the dispatch contract)
---------------------------------------------------------
Cancelling or rescheduling a handle does not remove its heap entry; the
entry lingers as *stale* and is recognised (generation mismatch or
cancelled flag) and dropped when it surfaces.  Hot fluid workloads
re-arm completion handles on nearly every rate solve, so stale entries
can outnumber live ones.  The simulator therefore keeps a running count
of stale entries and, once they exceed both ``compact_min`` and half the
heap, rebuilds the heap in place with only live entries
(:meth:`Simulator._compact`).  Compaction never reorders live entries —
dispatch order is the total order on ``(time, seq)`` and ``heapify``
preserves it — so seeded artifacts are byte-identical with or without
compaction.

What *is* observable is the event count: every dispatched callback
increments the ambient telemetry's ``sim.events`` counter, which lands
in metrics exports and journal deltas.  Stale entries are skipped
without dispatching (and were already skipped pre-compaction), so
removing them early is identity-safe; changing the number of real
dispatches is not.  Any optimisation here must preserve the exact
sequence of dispatched ``(time, seq)`` pairs and the exact number of
``schedule``/``reschedule`` calls (each consumes one sequence number).

Telemetry and invariant toggles are sampled when ``run()`` (or
``step()``) is entered; installing a telemetry sink or enabling
invariant checks from *inside* a callback takes effect on the next
``run()``/``step()`` call, not mid-loop.  All call sites in this
repository install/enable before running.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.obs import context as _obs_context
from repro.sim import invariants as _inv
from repro.sim.events import Event, Interrupt, Timeout

__all__ = ["Simulator", "Process", "ScheduledHandle", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation engine."""


class ScheduledHandle:
    """Cancellable handle for a scheduled callback.

    ``daemon`` entries (background samplers, watchdogs) never keep the
    event loop alive: ``run()`` without a horizon stops once only
    daemon events remain, like daemon threads at interpreter exit.

    A handle may be re-armed with :meth:`Simulator.reschedule`, which
    bumps ``generation``; heap entries carry the generation they were
    pushed with, so a superseded entry is recognised as stale when it
    surfaces and skipped without a callback (this avoids allocating a
    fresh handle per reschedule in hot paths such as fluid-flow
    completion updates).
    """

    __slots__ = ("time", "cancelled", "fired", "daemon", "generation", "sim")

    def __init__(self, time: float, daemon: bool = False,
                 sim: Optional["Simulator"] = None):
        self.time = time
        self.cancelled = False
        self.fired = False
        self.daemon = daemon
        self.generation = 0
        self.sim = sim

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent).

        Cancelling a handle whose callback has already run is a no-op:
        the heap entry is gone, so there is nothing to revoke and the
        handle must not be flagged as cancelled (a stale handle kept by
        e.g. a timeout that lost the race with its event would otherwise
        misreport state to whoever inspects it next).
        """
        if not self.fired and not self.cancelled:
            self.cancelled = True
            if self.sim is not None:
                self.sim._note_stale(self.daemon)


class Simulator:
    """Event loop with virtual time.

    Time is a ``float`` in seconds.  ``run(until=...)`` executes events in
    order until the queue is empty or the horizon is reached.
    """

    #: Stale entries tolerated before compaction is even considered.
    compact_min = 64

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._queue: List[
            Tuple[float, int, ScheduledHandle, int, Callable, tuple]] = []
        self._processing_events: List[Event] = []
        self._foreground = 0  # live (dispatchable) non-daemon entries
        self._n_stale = 0     # stale entries still sitting in the heap
        # Lifetime counters (cheap ints; surfaced by ``repro profile``
        # and, behind an explicit opt-in, the metrics registry).
        self.stale_skips = 0
        self.heap_compactions = 0
        self.events_dispatched = 0
        #: Optional ``hook(time, seq, callback, args)`` invoked for every
        #: *dispatched* event (tests: golden event-order pinning).
        self.dispatch_hook: Optional[Callable] = None

    # -- time -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduling --------------------------------------------------------
    def schedule(self, delay: float, callback: Callable, *args: Any,
                 daemon: bool = False) -> ScheduledHandle:
        """Schedule ``callback(*args)`` to run after *delay* seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay!r})")
        time = self._now + delay
        handle = ScheduledHandle(time, daemon, self)
        self._seq += 1
        heapq.heappush(self._queue,
                       (time, self._seq, handle, 0, callback, args))
        if not daemon:
            self._foreground += 1
        return handle

    def schedule_at(self, time: float, callback: Callable, *args: Any,
                    daemon: bool = False) -> ScheduledHandle:
        """Schedule ``callback(*args)`` at absolute simulated *time*.

        Daemon entries do not keep a horizon-less ``run()`` alive.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time!r} < now={self._now!r}")
        handle = ScheduledHandle(time, daemon, self)
        self._seq += 1
        heapq.heappush(self._queue,
                       (time, self._seq, handle, 0, callback, args))
        if not daemon:
            self._foreground += 1
        return handle

    def reschedule(self, handle: ScheduledHandle, time: float,
                   callback: Callable, *args: Any) -> ScheduledHandle:
        """Re-arm *handle* for ``callback(*args)`` at absolute *time*.

        Reuses the handle object instead of allocating a new one: the
        generation counter is bumped, so the superseded heap entry (if
        still queued) becomes stale and is dropped when popped.  The
        handle's ``daemon`` flag is retained.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time!r} < now={self._now!r}")
        # A still-pending entry becomes stale; its foreground slot (if
        # any) transfers to the new entry.  A fired or cancelled handle
        # has no live entry, so the new one claims a fresh slot.
        superseded = not handle.fired and not handle.cancelled
        handle.time = time
        handle.cancelled = False
        handle.fired = False
        handle.generation += 1
        self._seq += 1
        heapq.heappush(
            self._queue,
            (time, self._seq, handle, handle.generation, callback, args))
        if superseded:
            self._n_stale += 1
            if self._n_stale >= self.compact_min and \
                    self._n_stale * 2 >= len(self._queue):
                self._compact()
        elif not handle.daemon:
            self._foreground += 1
        return handle

    def _note_stale(self, daemon: bool) -> None:
        """A pending heap entry just became stale (via ``cancel``)."""
        self._n_stale += 1
        if not daemon:
            self._foreground -= 1
        if self._n_stale >= self.compact_min and \
                self._n_stale * 2 >= len(self._queue):
            self._compact()

    def _compact(self) -> None:
        """Drop stale entries and re-heapify, in place.

        In place matters: ``run()`` holds a local reference to the queue
        list, so the rebuild must mutate that same object.  Dispatch
        order is unchanged — it is the total order on ``(time, seq)``,
        which any heap over the surviving entries reproduces.
        """
        queue = self._queue
        queue[:] = [entry for entry in queue
                    if not (entry[2].cancelled
                            or entry[3] != entry[2].generation)]
        heapq.heapify(queue)
        self._n_stale = 0
        self.heap_compactions += 1

    def _schedule_event(self, event: Event) -> None:
        """Schedule an already-triggered event's callbacks to run now.

        Events triggered from inside the loop dispatch their callbacks as
        a zero-delay queue entry, preserving FIFO ordering between events
        triggered in the same callback.
        """
        self.schedule(0.0, event._run_callbacks)  # noqa: SLF001

    # -- event factories ---------------------------------------------------
    def event(self) -> Event:
        """Create a fresh pending :class:`Event` bound to this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None,
                daemon: bool = False) -> Timeout:
        """Create an event that fires after *delay* seconds."""
        return Timeout(self, delay, value, daemon=daemon)

    def process(self, generator: Generator, daemon: bool = False) -> "Process":
        """Start a new process from *generator*.

        A daemon process (periodic sampler, watchdog) never keeps a
        horizon-less ``run()`` alive on its own.
        """
        return Process(self, generator, daemon=daemon)

    # -- running -------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> None:
        """Run the event loop.

        Parameters
        ----------
        until:
            Absolute time horizon.  If given, execution stops once the
            next event would be strictly after *until*, and ``now`` is
            advanced to *until*.  If omitted, runs until no *foreground*
            events remain (daemon entries alone never sustain the loop).

        Telemetry/invariant switches are sampled on entry (see module
        docstring); same-instant event bursts dispatch back-to-back
        against those cached locals without re-reading ambient state.
        """
        queue = self._queue
        pop = heapq.heappop
        inv_on = _inv.ENABLED
        telemetry = _obs_context._ACTIVE
        on_sim_event = (None if telemetry is None
                        else telemetry.on_sim_event)
        hook = self.dispatch_hook
        dispatched = 0
        stale0 = self.stale_skips
        compact0 = self.heap_compactions
        try:
            if until is None:
                while queue:
                    if not self._foreground:
                        return
                    time, seq, handle, gen, callback, args = pop(queue)
                    if handle.cancelled or gen != handle.generation:
                        self._n_stale -= 1
                        self.stale_skips += 1
                        continue
                    if not handle.daemon:
                        self._foreground -= 1
                    handle.fired = True
                    if inv_on and time < self._now:
                        raise _inv.InvariantViolation(
                            f"event time moved backwards: popped {time!r} "
                            f"with now={self._now!r} (heap corrupted)")
                    self._now = time
                    dispatched += 1
                    if on_sim_event is not None:
                        on_sim_event()
                    if hook is not None:
                        hook(time, seq, callback, args)
                    callback(*args)
            else:
                while queue:
                    entry = queue[0]
                    time = entry[0]
                    if time > until:
                        self._now = until
                        return
                    pop(queue)
                    handle = entry[2]
                    if handle.cancelled or entry[3] != handle.generation:
                        self._n_stale -= 1
                        self.stale_skips += 1
                        continue
                    if not handle.daemon:
                        self._foreground -= 1
                    handle.fired = True
                    if inv_on and time < self._now:
                        raise _inv.InvariantViolation(
                            f"event time moved backwards: popped {time!r} "
                            f"with now={self._now!r} (heap corrupted)")
                    self._now = time
                    dispatched += 1
                    if on_sim_event is not None:
                        on_sim_event()
                    if hook is not None:
                        hook(time, entry[1], entry[4], entry[5])
                    entry[4](*entry[5])
                if until > self._now:
                    self._now = until
        finally:
            self.events_dispatched += dispatched
            if telemetry is not None:
                # Opt-in engine counters (REPRO_ENGINE_COUNTERS=1): the
                # sink materializes only nonzero deltas, so default
                # metrics exports stay byte-identical.
                telemetry.on_engine_stats(
                    dispatched,
                    self.stale_skips - stale0,
                    self.heap_compactions - compact0)

    def peek(self) -> float:
        """Time of the next pending event, or ``inf`` if none."""
        queue = self._queue
        while queue:
            head = queue[0]
            handle = head[2]
            if not (handle.cancelled or head[3] != handle.generation):
                break
            heapq.heappop(queue)
            self._n_stale -= 1
            self.stale_skips += 1
        return queue[0][0] if queue else float("inf")

    def step(self) -> None:
        """Execute exactly the next pending callback."""
        while self._queue:
            time, seq, handle, gen, callback, args = \
                heapq.heappop(self._queue)
            if handle.cancelled or gen != handle.generation:
                self._n_stale -= 1
                self.stale_skips += 1
                continue
            if not handle.daemon:
                self._foreground -= 1
            handle.fired = True
            if _inv.ENABLED and time < self._now:
                raise _inv.InvariantViolation(
                    f"event time moved backwards: popped {time!r} with "
                    f"now={self._now!r} (heap corrupted)")
            self._now = time
            self.events_dispatched += 1
            telemetry = _obs_context._ACTIVE
            if telemetry is not None:
                telemetry.on_sim_event()
            hook = self.dispatch_hook
            if hook is not None:
                hook(time, seq, callback, args)
            callback(*args)
            return
        raise SimulationError("step() on an empty event queue")

    def engine_stats(self) -> dict:
        """Lifetime engine counters (``repro profile`` / opt-in metrics)."""
        return {
            "engine.events_dispatched": self.events_dispatched,
            "engine.stale_skips": self.stale_skips,
            "engine.heap_compactions": self.heap_compactions,
        }


class Process(Event):
    """A running generator; also an event that fires on completion."""

    __slots__ = ("_generator", "_waiting_on", "_sleep_handle", "_sleep_gen",
                 "_sleep_reuse", "name", "daemon")

    def __init__(self, sim: Simulator, generator: Generator, name: str = "",
                 daemon: bool = False):
        super().__init__(sim)
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self._sleep_handle: Optional[ScheduledHandle] = None
        self._sleep_reuse: Optional[ScheduledHandle] = None
        self._sleep_gen = 0
        self.name = name or getattr(generator, "__name__", "process")
        self.daemon = daemon
        # Kick off on the next tick so creation order doesn't matter.
        sim.schedule(0.0, self._resume, None, None, daemon=daemon)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the process at its current yield."""
        if self.triggered:
            return
        waiting = self._waiting_on
        self._waiting_on = None
        if waiting is not None:
            # Detach: leave a tombstone callback that ignores the event.
            try:
                waiting.callbacks.remove(self._on_event)
            except ValueError:
                pass
        # Detach a pending plain sleep.  The heap entry is *not*
        # cancelled: it fires later as a no-op dispatch, exactly like a
        # detached Timeout's empty callback list did, so event counts
        # (and with them metrics exports) are unchanged.
        self._sleep_handle = None
        self.sim.schedule(0.0, self._resume, None, Interrupt(cause),
                          daemon=self.daemon)

    # -- driving the generator -------------------------------------------
    def _on_event(self, event: Event) -> None:
        self._waiting_on = None
        if event.ok:
            self._resume(event.value, None)
        else:
            self._resume(None, event._exception)  # noqa: SLF001

    def _resume(self, value: Any, exc: Optional[BaseException]) -> None:
        if self.triggered:
            return
        try:
            if exc is not None:
                target = self._generator.throw(exc)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Exception as error:
            self.fail(error)
            return
        self._wait_for(target)

    def _wait_for(self, target: Any) -> None:
        if isinstance(target, (int, float)):
            # Numeric yields (plain sleeps) are by far the most common
            # wait, so they skip the Timeout/Event allocation and the
            # callback indirection entirely: one heap entry resuming the
            # generator directly.  Exactly one schedule() call either
            # way, so heap sequence numbers — and with them the order of
            # same-instant events — are identical to the Timeout path.
            if target < 0:
                # Same contract as Timeout: reject before scheduling.
                raise ValueError(f"negative timeout delay: {target!r}")
            self._sleep_gen += 1
            # Re-arm the previous sleep handle when its entry has
            # already fired: reschedule() consumes one sequence number,
            # exactly like schedule(), but skips the handle allocation.
            # An interrupted sleep leaves its entry pending (fired is
            # False), so a fresh handle is used and the orphan entry
            # still dispatches as a counted no-op.
            sim = self.sim
            reuse = self._sleep_reuse
            if reuse is not None and reuse.fired:
                self._sleep_handle = sim.reschedule(
                    reuse, sim._now + target,  # noqa: SLF001
                    self._sleep_fired, self._sleep_gen)
            else:
                self._sleep_handle = self._sleep_reuse = sim.schedule(
                    target, self._sleep_fired, self._sleep_gen,
                    daemon=self.daemon)
            return
        if not isinstance(target, Event):
            self._resume(
                None,
                SimulationError(
                    f"process {self.name!r} yielded {target!r}; expected a "
                    "delay, Event or Process"),
            )
            return
        self._waiting_on = target
        target.add_callback(self._on_event)

    def _sleep_fired(self, gen: int) -> None:
        if gen != self._sleep_gen or self._sleep_handle is None:
            return  # stale: the sleep was interrupted away
        self._sleep_handle = None
        self._resume(None, None)
