"""Fluid-solver micro-benchmark drivers.

Shared between the pytest-benchmark suite (``benchmarks/
test_fluid_solver.py``) and ``repro bench`` so the committed
``BENCH_*.json`` baselines track the solver itself, not only the
figure sweeps that happen to exercise it.

Four shapes:

* :func:`churn` — many small components (fig10-style: one bus per
  socket) under start/finish/capacity churn.  Components stay below
  the vectorization threshold, so this guards the scalar path and the
  dirty-component bookkeeping.
* :func:`churn_wide` — a few wide components (fabric-style: dozens of
  flows sharing a bus *and* a link) re-solved repeatedly under
  capacity wiggles.  Components sit above the threshold, so this
  guards the vectorized solver and its component-plan cache.
* :func:`tiny_components` — 1–2-flow component churn, guarding the
  PR 9 closed-form small-component fast path.
* :func:`sampler_dense` — dense periodic sampling under activity
  churn, guarding the PR 9 epoch-batched sampler.
"""

from __future__ import annotations

from typing import Tuple

from repro.sim.engine import Simulator
from repro.sim.fluid import Flow, FluidNetwork, Resource
from repro.sim.trace import PeriodicSampler

__all__ = ["churn", "churn_wide", "sampler_dense", "tiny_components"]


def churn(n_components: int = 16, per: int = 12,
          rounds: int = 40) -> Tuple[int, float]:
    """Drive isolated bus components through start/finish/capacity churn.

    Returns (events, total simulated seconds) so callers can sanity
    check that all work actually happened.
    """
    sim = Simulator()
    net = FluidNetwork(sim)
    buses = [Resource(f"bus{i}", 100.0) for i in range(n_components)]
    events = 0
    for r in range(rounds):
        flows = [net.start_flow(Flow([buses[i % n_components]],
                                     size=50.0 + (i % per),
                                     demand=40.0))
                 for i in range(n_components * per)]
        events += len(flows)
        # Mid-round capacity wiggle on every component (the fig10
        # set_core_activity pattern), then drain.
        sim.run(until=sim.now + 0.2)
        for i, bus in enumerate(buses):
            bus.set_capacity(90.0 + (r + i) % 20)
            events += 1
        sim.run()
        assert all(f.done.triggered for f in flows)
    return events, sim.now


def tiny_components(n_components: int = 200, rounds: int = 60
                    ) -> Tuple[int, float]:
    """1–2-flow component churn (the fig10 per-socket regime).

    Every component stays at one or two flows, so each solve takes the
    closed-form small-component fast path (PR 9); the churn itself
    (start/complete/capacity wiggles) exercises the dirty-component
    bookkeeping and completion rescheduling around it.
    """
    sim = Simulator()
    net = FluidNetwork(sim)
    buses = [Resource(f"bus{i}", 100.0) for i in range(n_components)]
    events = 0
    for r in range(rounds):
        flows = []
        for i, bus in enumerate(buses):
            flows.append(net.start_flow(Flow(
                [bus], size=30.0 + (i % 7), demand=25.0)))
            if i % 2:   # every other component gets a contending peer
                flows.append(net.start_flow(Flow(
                    [bus], size=18.0 + (i % 5), demand=40.0)))
        events += len(flows)
        sim.run(until=sim.now + 0.3)
        for i, bus in enumerate(buses):
            bus.set_capacity(85.0 + (r + i) % 30)
            events += 1
        sim.run()
        assert all(f.done.triggered for f in flows)
    return events, sim.now


def sampler_dense(period: float = 1e-4, wiggles: int = 2000,
                  gap: float = 2.3e-3) -> Tuple[int, float]:
    """Dense periodic sampling of a frequency model under activity churn.

    A :class:`~repro.sim.trace.PeriodicSampler` probes every core of a
    ``henri`` machine at *period* while a driver toggles core activity
    (the Figure-2 pattern).  With no telemetry sink installed the
    sampler runs epoch-batched — this case pins the cost of the batch
    emission path (and, under ``REPRO_SAMPLER_TICKS=1``, of the legacy
    tick path it replaced).
    """
    from repro.hardware.frequency import CoreActivity, FrequencyModel
    from repro.hardware.presets import get_preset

    spec = get_preset("henri")
    socket_of_core = {c: (0 if c < spec.n_cores // 2 else 1)
                      for c in range(spec.n_cores)}
    freq = FrequencyModel(spec, socket_of_core)
    sim = Simulator()
    probes = {f"core{c}": (lambda cid=c: freq.core_hz(cid) / 1e9)
              for c in range(spec.n_cores)}
    probes["uncore_s0"] = lambda: freq.uncore_hz(0) / 1e9
    sampler = PeriodicSampler(sim, probes, period=period,
                              epoch_sources=(freq,)).start()

    def wiggle():
        for k in range(wiggles):
            core = k % spec.n_cores
            freq.set_activity(core, CoreActivity.IDLE if k % 3 == 2
                              else (CoreActivity.AVX512 if k % 3
                                    else CoreActivity.SCALAR))
            yield gap
    sim.process(wiggle())
    sim.run()
    trace = sampler.stop()
    samples = sum(len(trace.times(name)) for name in trace.names())
    return samples, sim.now


def churn_wide(per: int = 128, groups: int = 16, rounds: int = 6,
               wiggles: int = 40) -> Tuple[int, float]:
    """Re-solve one wide fabric component under trunk-capacity churn.

    Every flow crosses a shared trunk plus its group's bus and link, so
    all *per* flows form one connected component — large enough for the
    vectorized solver.  Each round starts the block once and then
    wiggles the trunk capacity *wiggles* times: every wiggle re-solves
    the same membership, which is exactly the access pattern the
    component-plan and dirty-component caches amortize.
    """
    sim = Simulator()
    net = FluidNetwork(sim)
    trunk = Resource("trunk", 5000.0)
    buses = [Resource(f"bus{i}", 400.0) for i in range(groups)]
    links = [Resource(f"link{i}", 250.0) for i in range(groups)]
    events = 0
    for r in range(rounds):
        flows = [net.start_flow(Flow(
                    [trunk, buses[i % groups], links[i % groups]],
                    size=400.0 + (i % per),
                    demand=6.0 + (i % 5),
                    usage={links[i % groups]: 1.5}))
                 for i in range(per)]
        events += len(flows)
        for k in range(wiggles):
            sim.run(until=sim.now + 0.05)
            trunk.set_capacity(4800.0 + (r + k) % 400)
            events += 1
        sim.run()
        assert all(f.done.triggered for f in flows)
    return events, sim.now
