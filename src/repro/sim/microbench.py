"""Fluid-solver micro-benchmark drivers.

Shared between the pytest-benchmark suite (``benchmarks/
test_fluid_solver.py``) and ``repro bench`` so the committed
``BENCH_*.json`` baselines track the solver itself, not only the
figure sweeps that happen to exercise it.

Two shapes:

* :func:`churn` — many small components (fig10-style: one bus per
  socket) under start/finish/capacity churn.  Components stay below
  the vectorization threshold, so this guards the scalar path and the
  dirty-component bookkeeping.
* :func:`churn_wide` — a few wide components (fabric-style: dozens of
  flows sharing a bus *and* a link) re-solved repeatedly under
  capacity wiggles.  Components sit above the threshold, so this
  guards the vectorized solver and its component-plan cache.
"""

from __future__ import annotations

from typing import Tuple

from repro.sim.engine import Simulator
from repro.sim.fluid import Flow, FluidNetwork, Resource

__all__ = ["churn", "churn_wide"]


def churn(n_components: int = 16, per: int = 12,
          rounds: int = 40) -> Tuple[int, float]:
    """Drive isolated bus components through start/finish/capacity churn.

    Returns (events, total simulated seconds) so callers can sanity
    check that all work actually happened.
    """
    sim = Simulator()
    net = FluidNetwork(sim)
    buses = [Resource(f"bus{i}", 100.0) for i in range(n_components)]
    events = 0
    for r in range(rounds):
        flows = [net.start_flow(Flow([buses[i % n_components]],
                                     size=50.0 + (i % per),
                                     demand=40.0))
                 for i in range(n_components * per)]
        events += len(flows)
        # Mid-round capacity wiggle on every component (the fig10
        # set_core_activity pattern), then drain.
        sim.run(until=sim.now + 0.2)
        for i, bus in enumerate(buses):
            bus.set_capacity(90.0 + (r + i) % 20)
            events += 1
        sim.run()
        assert all(f.done.triggered for f in flows)
    return events, sim.now


def churn_wide(per: int = 128, groups: int = 16, rounds: int = 6,
               wiggles: int = 40) -> Tuple[int, float]:
    """Re-solve one wide fabric component under trunk-capacity churn.

    Every flow crosses a shared trunk plus its group's bus and link, so
    all *per* flows form one connected component — large enough for the
    vectorized solver.  Each round starts the block once and then
    wiggles the trunk capacity *wiggles* times: every wiggle re-solves
    the same membership, which is exactly the access pattern the
    component-plan and dirty-component caches amortize.
    """
    sim = Simulator()
    net = FluidNetwork(sim)
    trunk = Resource("trunk", 5000.0)
    buses = [Resource(f"bus{i}", 400.0) for i in range(groups)]
    links = [Resource(f"link{i}", 250.0) for i in range(groups)]
    events = 0
    for r in range(rounds):
        flows = [net.start_flow(Flow(
                    [trunk, buses[i % groups], links[i % groups]],
                    size=400.0 + (i % per),
                    demand=6.0 + (i % 5),
                    usage={links[i % groups]: 1.5}))
                 for i in range(per)]
        events += len(flows)
        for k in range(wiggles):
            sim.run(until=sim.now + 0.05)
            trunk.set_capacity(4800.0 + (r + k) % 400)
            events += 1
        sim.run()
        assert all(f.done.triggered for f in flows)
    return events, sim.now
