"""Time-series recording for simulated quantities.

Used to reproduce the paper's frequency-trace figures (Figures 2, 3b,
3c): a :class:`PeriodicSampler` process samples a callable at a fixed
simulated period and appends to a :class:`Trace`.

Epoch-batched sampling (PR 9)
-----------------------------
Every quantity the samplers probe — core/uncore frequencies, power,
counter aggregates — is *piecewise-constant*: it only moves when some
model mutator runs (an activity change, a governor pin, a recorded
execution slice).  Paying one heap event plus one Python probe call per
tick to re-read an unchanged value is the single largest sampling cost
in the dense-trace figures.

Models that want cheap sampling inherit :class:`EpochSource`: each
mutator calls ``_bump_epoch()`` *before* changing observable state,
which advances ``epoch_generation`` and synchronously notifies
registered listeners.  A :class:`PeriodicSampler` given
``epoch_sources`` then runs in one of two modes:

* **tick mode** (the legacy behaviour, forced whenever a telemetry
  sink is active or ``REPRO_SAMPLER_TICKS=1`` is set): one daemon
  event per period.  The epoch generation still lets it skip the
  probe calls when nothing changed since the previous tick — the
  cached values are bit-identical by construction, so traces (and the
  artifacts rendered from them) do not change.
* **batch mode** (no telemetry sink): no heap events at all.  The
  sampler registers as an epoch listener; right before a source
  mutates, it emits every pending tick of the closing epoch as one
  vectorized numpy append (constant value, the exact tick-time chain
  ``t += period`` the event path would have produced).  ``stop()``
  flushes the tail.  Tick mode stays available because removing the
  per-tick heap events changes the engine's dispatched-event count,
  which telemetry exports into metrics artifacts — batch mode is
  therefore auto-disabled when a sink is recording.

The one observable difference of batch mode: a tick that lands
*bitwise-exactly* on a mutation instant records the pre-mutation value,
where tick mode's outcome depends on heap tie-breaking.  None of the
repo's experiments schedules a mutation on the sampling grid.

Callers own the epoch contract: ``epoch_sources`` must cover every
mutable model a probe reads.  With no sources the sampler behaves
exactly as before PR 9.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs import context as _obs_context

__all__ = ["Trace", "PeriodicSampler", "EpochSource"]


class EpochSource:
    """Mixin for models whose observable state moves in discrete epochs.

    Mutators call :meth:`_bump_epoch` immediately *before* changing any
    state a probe might read; listeners (batch-mode samplers) use the
    notification to flush the closing epoch while it is still readable.
    """

    epoch_generation: int = 0
    _epoch_listeners: Tuple[Callable[[], None], ...] = ()

    def add_epoch_listener(self, callback: Callable[[], None]) -> None:
        self._epoch_listeners = self._epoch_listeners + (callback,)

    def remove_epoch_listener(self, callback: Callable[[], None]) -> None:
        # Equality, not identity: bound methods are recreated per
        # access, so ``source.remove_epoch_listener(self._on_epoch)``
        # must match the equal-but-distinct object registered earlier.
        self._epoch_listeners = tuple(
            cb for cb in self._epoch_listeners if cb != callback)

    def _bump_epoch(self) -> None:
        self.epoch_generation += 1
        for callback in self._epoch_listeners:
            callback()


class Trace:
    """Named multi-series time trace.

    Series are created lazily on first append and stored as ordered
    *legs*: a leg is either a plain list of ``(time, value)`` points
    (scalar :meth:`record` appends) or a pair of numpy arrays (one
    :meth:`record_block` append).  Appends must be chronological per
    series — true for any single producer — and the read API presents
    the concatenation.
    """

    __slots__ = ("_legs",)

    def __init__(self) -> None:
        self._legs: Dict[str, List[object]] = {}

    def record(self, name: str, time: float, value: float) -> None:
        legs = self._legs.setdefault(name, [])
        if legs and type(legs[-1]) is list:
            legs[-1].append((time, float(value)))
        else:
            legs.append([(time, float(value))])

    def record_block(self, name: str, times: np.ndarray,
                     values: np.ndarray) -> None:
        """Append a chronological block of samples in one shot."""
        if len(times) != len(values):
            raise ValueError("times/values length mismatch")
        if len(times):
            self._legs.setdefault(name, []).append(
                (np.asarray(times, dtype=float),
                 np.asarray(values, dtype=float)))

    def _arrays(self, name: str) -> Tuple[np.ndarray, np.ndarray]:
        legs = self._legs.get(name)
        if not legs:
            empty = np.array([])
            return empty, empty
        times: List[np.ndarray] = []
        values: List[np.ndarray] = []
        for leg in legs:
            if type(leg) is list:
                times.append(np.array([t for t, _ in leg]))
                values.append(np.array([v for _, v in leg]))
            else:
                times.append(leg[0])
                values.append(leg[1])
        if len(times) == 1:
            return times[0], values[0]
        return np.concatenate(times), np.concatenate(values)

    def names(self) -> List[str]:
        return sorted(self._legs)

    def times(self, name: str) -> np.ndarray:
        return self._arrays(name)[0]

    def values(self, name: str) -> np.ndarray:
        return self._arrays(name)[1]

    def last(self, name: str) -> Optional[float]:
        legs = self._legs.get(name)
        if not legs:
            return None
        tail = legs[-1]
        if type(tail) is list:
            return tail[-1][1]
        return float(tail[1][-1])

    def window(self, name: str, t0: float, t1: float) -> np.ndarray:
        """Values of *name* with ``t0 <= t < t1``."""
        times, values = self._arrays(name)
        if not times.size:
            return values
        return values[(times >= t0) & (times < t1)]

    def mean(self, name: str, t0: float = 0.0,
             t1: float = float("inf")) -> float:
        window = self.window(name, t0, t1)
        if window.size == 0:
            raise ValueError(f"no samples for {name!r} in [{t0}, {t1})")
        return float(window.mean())


class PeriodicSampler:
    """Samples ``probes`` every *period* simulated seconds into a trace.

    Parameters
    ----------
    sim:
        The simulator driving time.
    probes:
        Mapping of series name to zero-argument callables returning the
        instantaneous value.
    period:
        Sampling period (seconds).
    epoch_sources:
        :class:`EpochSource` models covering *everything* the probes
        read.  Enables epoch-batched emission (see module docstring);
        empty keeps the legacy one-event-per-tick behaviour.
    """

    def __init__(self, sim, probes: Dict[str, Callable[[], float]],
                 period: float, trace: Optional[Trace] = None,
                 epoch_sources: Sequence[EpochSource] = ()):
        if period <= 0:
            raise ValueError("sampling period must be > 0")
        self.sim = sim
        self.probes = dict(probes)
        self.period = float(period)
        self.trace = trace if trace is not None else Trace()
        self.epoch_sources = tuple(epoch_sources)
        self._names = list(self.probes)
        self._funcs = [self.probes[n] for n in self._names]
        self._running = False
        self._process = None
        self._batch = False
        # Batch-mode state: time of the next unemitted tick and the
        # cached probe values of the current epoch (None = stale).
        self._next_time = 0.0
        self._values: Optional[List[float]] = None

    def start(self) -> "PeriodicSampler":
        if self._running:
            raise RuntimeError("sampler already running")
        self._running = True
        force_ticks = os.environ.get("REPRO_SAMPLER_TICKS", "") not in ("", "0")
        self._batch = bool(self.epoch_sources) and not force_ticks \
            and _obs_context._ACTIVE is None
        if self._batch:
            self._next_time = self.sim.now
            self._values = None
            for source in self.epoch_sources:
                source.add_epoch_listener(self._on_epoch)
        else:
            # Daemon: a sampler must never keep a horizon-less run()
            # alive (callers would hang draining an endless schedule).
            self._process = self.sim.process(self._run(), daemon=True)
        return self

    def stop(self) -> Trace:
        if self._running and self._batch:
            self._flush()
            for source in self.epoch_sources:
                source.remove_epoch_listener(self._on_epoch)
        self._running = False
        return self.trace

    # -- batch mode ---------------------------------------------------------
    def _on_epoch(self) -> None:
        """Epoch listener: a source is about to mutate — emit every
        pending tick of the closing epoch, then drop the value cache."""
        self._flush()
        self._values = None

    def _flush(self) -> None:
        now = self.sim.now
        t = self._next_time
        if t > now:
            return
        values = self._values
        if values is None:
            values = self._values = [func() for func in self._funcs]
        # The exact per-tick time chain the event path would produce:
        # each tick schedules the next at now + period.
        period = self.period
        ticks: List[float] = []
        while t <= now:
            ticks.append(t)
            t += period
        self._next_time = t
        arr = np.array(ticks)
        trace = self.trace
        for name, value in zip(self._names, values):
            trace.record_block(name, arr, np.full(len(ticks), value))

    # -- tick mode ----------------------------------------------------------
    def _run(self):
        sources = self.epoch_sources
        names = self._names
        funcs = self._funcs
        trace = self.trace
        values: Optional[List[float]] = None
        gen = -1
        while self._running:
            if sources:
                g = 0
                for source in sources:
                    g += source.epoch_generation
                if values is None or g != gen:
                    values = [func() for func in funcs]
                    gen = g
            else:
                values = [func() for func in funcs]
            now = self.sim.now
            for name, value in zip(names, values):
                trace.record(name, now, value)
            yield self.period
