"""Time-series recording for simulated quantities.

Used to reproduce the paper's frequency-trace figures (Figures 2, 3b,
3c): a :class:`PeriodicSampler` process samples a callable at a fixed
simulated period and appends to a :class:`Trace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Trace", "PeriodicSampler"]


@dataclass
class Trace:
    """Named multi-series time trace.

    Each series is a list of ``(time, value)`` pairs.  Series are created
    lazily on first :meth:`record`.
    """

    series: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)

    def record(self, name: str, time: float, value: float) -> None:
        self.series.setdefault(name, []).append((time, float(value)))

    def names(self) -> List[str]:
        return sorted(self.series)

    def times(self, name: str) -> np.ndarray:
        return np.array([t for t, _ in self.series.get(name, ())])

    def values(self, name: str) -> np.ndarray:
        return np.array([v for _, v in self.series.get(name, ())])

    def last(self, name: str) -> Optional[float]:
        pts = self.series.get(name)
        return pts[-1][1] if pts else None

    def window(self, name: str, t0: float, t1: float) -> np.ndarray:
        """Values of *name* with ``t0 <= t < t1``."""
        return np.array([v for t, v in self.series.get(name, ())
                         if t0 <= t < t1])

    def mean(self, name: str, t0: float = 0.0,
             t1: float = float("inf")) -> float:
        window = self.window(name, t0, t1)
        if window.size == 0:
            raise ValueError(f"no samples for {name!r} in [{t0}, {t1})")
        return float(window.mean())


class PeriodicSampler:
    """Samples ``probes`` every *period* simulated seconds into a trace.

    Parameters
    ----------
    sim:
        The simulator driving time.
    probes:
        Mapping of series name to zero-argument callables returning the
        instantaneous value.
    period:
        Sampling period (seconds).
    """

    def __init__(self, sim, probes: Dict[str, Callable[[], float]],
                 period: float, trace: Optional[Trace] = None):
        if period <= 0:
            raise ValueError("sampling period must be > 0")
        self.sim = sim
        self.probes = dict(probes)
        self.period = float(period)
        self.trace = trace if trace is not None else Trace()
        self._running = False
        self._process = None

    def start(self) -> "PeriodicSampler":
        if self._running:
            raise RuntimeError("sampler already running")
        self._running = True
        # Daemon: a sampler must never keep a horizon-less run() alive
        # (callers would hang draining an endless sampling schedule).
        self._process = self.sim.process(self._run(), daemon=True)
        return self

    def stop(self) -> Trace:
        self._running = False
        return self.trace

    def _run(self):
        while self._running:
            for name, probe in self.probes.items():
                self.trace.record(name, self.sim.now, probe())
            yield self.period
