"""Deterministic random streams and the measurement-noise model.

The paper plots medians with first/last-decile bands over several runs.
The simulator itself is deterministic, so run-to-run variability is
emulated with controlled multiplicative noise applied to measured
durations.  Each named stream is an independent ``numpy`` generator
seeded from a master seed and the stream name, so adding a new stream
never perturbs existing ones.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

__all__ = ["RandomStreams", "noisy"]

# rel_sigma -> log1p(rel_sigma); specs use a handful of distinct noise
# levels, and the memo returns the exact float np.log1p produced.
_SIGMA_CACHE: Dict[float, float] = {}


class RandomStreams:
    """A family of independent, reproducible RNG streams."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the generator for *name*."""
        gen = self._streams.get(name)
        if gen is None:
            digest = hashlib.sha256(
                f"{self.seed}:{name}".encode()).digest()
            child_seed = int.from_bytes(digest[:8], "little")
            gen = np.random.default_rng(child_seed)
            self._streams[name] = gen
        return gen

    def spawn(self, name: str) -> "RandomStreams":
        """Derive an independent sub-family (for nested components)."""
        digest = hashlib.sha256(f"{self.seed}:spawn:{name}".encode()).digest()
        return RandomStreams(int.from_bytes(digest[:8], "little"))


def noisy(value: float, rel_sigma: float, rng: np.random.Generator) -> float:
    """Multiplicative log-normal noise around *value*.

    ``rel_sigma`` is the approximate relative standard deviation; the
    log-normal keeps durations strictly positive and right-skewed, which
    matches real latency distributions (occasional slow outliers, hard
    floor on the fast side).
    """
    if rel_sigma <= 0:
        return value
    sigma = _SIGMA_CACHE.get(rel_sigma)
    if sigma is None:
        sigma = _SIGMA_CACHE[rel_sigma] = float(np.log1p(rel_sigma))
    factor = float(rng.lognormal(mean=-0.5 * sigma * sigma, sigma=sigma))
    return value * factor
