"""Discrete-event simulation substrate.

This subpackage is the foundation every other part of :mod:`repro` builds
on.  It provides:

* :mod:`repro.sim.engine` — a small deterministic discrete-event simulator
  with generator-based processes (in the style of SimPy, self-contained).
* :mod:`repro.sim.events` — event primitives (:class:`Event`,
  :class:`Timeout`, :class:`AllOf`, :class:`AnyOf`).
* :mod:`repro.sim.fluid` — a fluid-flow bandwidth-sharing model with
  weighted max-min fairness (progressive filling), demand caps and
  per-resource usage multipliers.  Memory controllers, inter-NUMA links,
  PCIe lanes and network wires are all instances of
  :class:`~repro.sim.fluid.Resource`, and every ongoing transfer (a core
  streaming an array, a NIC DMA) is a :class:`~repro.sim.fluid.Flow`.
* :mod:`repro.sim.randomness` — named deterministic RNG streams and the
  measurement-noise model used to emulate run-to-run variability.
* :mod:`repro.sim.trace` — time-series recording (used for the frequency
  traces of Figures 2 and 3 of the paper).
"""

from repro.sim.engine import Simulator, Process, SimulationError
from repro.sim.events import Event, Timeout, AllOf, AnyOf, Interrupt
from repro.sim.fluid import Resource, Flow, FluidNetwork
from repro.sim.randomness import RandomStreams, noisy
from repro.sim.trace import Trace, PeriodicSampler

__all__ = [
    "Simulator",
    "Process",
    "SimulationError",
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Resource",
    "Flow",
    "FluidNetwork",
    "RandomStreams",
    "noisy",
    "Trace",
    "PeriodicSampler",
]
