"""Legacy setup shim.

The execution environment has no network and no ``wheel`` package, so
PEP 660 editable installs are unavailable; this shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` work offline.
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
