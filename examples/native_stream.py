#!/usr/bin/env python
"""Run the real STREAM kernels on *this* machine (no simulation).

A live reference point: measures NumPy COPY/TRIAD bandwidth on the host
and compares the tunable-TRIAD idea (§4.5) outside the simulator.  Use
it to sanity-check the simulator's memory-bandwidth presets against the
hardware you are on.

Run:  python examples/native_stream.py [--elems N]
"""

import argparse

from repro.core.report import render_table
from repro.kernels.native import run_native_stream


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--elems", type=int, default=20_000_000,
                        help="array elements (default 20M = 160 MB/array)")
    parser.add_argument("--iterations", type=int, default=5)
    args = parser.parse_args()

    rows = []
    for kernel in ("copy", "triad"):
        res = run_native_stream(kernel, elems=args.elems,
                                iterations=args.iterations)
        rows.append([kernel, f"{res.bandwidth / 1e9:.2f} GB/s"])
    for cursor in (1, 4, 16):
        res = run_native_stream("tunable_triad", elems=args.elems,
                                iterations=args.iterations, cursor=cursor)
        rows.append([f"tunable_triad(cursor={cursor})",
                     f"{res.bandwidth / 1e9:.2f} GB/s"])
    print("Host-native STREAM (single thread, NumPy):")
    print(render_table(["kernel", "bandwidth"], rows))
    print("\nCompare with the simulator's henri preset: "
          "13 GB/s per core, 52 GB/s per NUMA controller.")


if __name__ == "__main__":
    main()
