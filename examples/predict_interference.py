#!/usr/bin/env python
"""Predicting interference without running anything (§8 future work).

"As future works, we would like to better understand origins of these
interferences to predict and quantify them."

Given your application's arithmetic intensity and core count, the
closed-form predictor estimates how much communication performance you
will lose — and the script cross-checks a few points against the full
simulation.

Run:  python examples/predict_interference.py
"""

from repro.analysis.prediction import predict_interference
from repro.core.report import render_table
from repro.kernels.blas import gemv_tile_cost
from repro.kernels.extra import dgemm_kernel, spmv_kernel, stencil_kernel
from repro.kernels.stream import triad_kernel


def main() -> None:
    apps = [
        ("SpMV (CSR)", spmv_kernel().intensity, False),
        ("STREAM TRIAD", triad_kernel().intensity, False),
        ("7-pt stencil (blocked)", stencil_kernel().intensity, False),
        ("dense GEMV (CG)", gemv_tile_cost(1000, 1000).intensity, True),
        ("blocked DGEMM", dgemm_kernel().intensity, True),
    ]
    rows = []
    for name, intensity, vector in apps:
        p = predict_interference("henri", n_cores=35,
                                 intensity=intensity, vector=vector)
        rows.append([
            name, f"{intensity:.2f}",
            f"x{p.latency_ratio:.2f}",
            f"-{(1 - p.bandwidth_ratio) * 100:.0f}%",
            f"x{p.compute_slowdown:.2f}",
        ])
    print("Predicted interference at 35 computing cores (henri):")
    print(render_table(
        ["application", "flop/B", "latency", "net bandwidth",
         "compute slowdown"], rows))

    # Cross-check one point against the full simulation.
    from repro.core import experiments as E
    sim = E.fig4b(core_counts=[0, 35], reps=3)
    simulated = (sim["comm_together_bw"].at(35)
                 / sim["comm_together_bw"].at(0))
    predicted = predict_interference("henri", 35).bandwidth_ratio
    print(f"\ncross-check (TRIAD, 35 cores, 64MB): predicted bandwidth "
          f"ratio {predicted:.2f}, simulated {simulated:.2f}")


if __name__ == "__main__":
    main()
