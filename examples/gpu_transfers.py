#!/usr/bin/env python
"""GPU data movements vs communications and computations (§8 future work).

The paper's closing sentence promises to study "the impact of data
movements between main memory and GPUs".  This example runs that study
on the simulator: V100-class GPUs attached to each node shuttle data
over PCIe while (a) a ping-pong measures the network and (b) STREAM
cores load the memory bus.

Run:  python examples/gpu_transfers.py
"""

from repro.core.gpu_experiments import gpu_vs_network, gpu_vs_stream
from repro.core.report import render_table


def main() -> None:
    # --- GPU traffic vs the network --------------------------------------
    res = gpu_vs_network(reps=8)
    lat = res["latency"]
    bw = res["bandwidth"]
    size = 64 << 20
    rows = [
        ["latency (4B)", f"{lat.at(0)*1e6:.2f} us",
         f"{lat.at(1)*1e6:.2f} us"],
        ["bandwidth (64MB)", f"{size/bw.at(0)/1e9:.2f} GB/s",
         f"{size/bw.at(1)/1e9:.2f} GB/s"],
    ]
    print("Network beside 20 STREAM cores, without/with H2D memcpy "
          "streams:")
    print(render_table(["metric", "no GPU traffic", "GPU traffic"], rows))
    print(f"  memcpy sustains "
          f"{res.observations['memcpy_bw_during_bandwidth']/1e9:.2f} GB/s "
          "during the bandwidth test\n")

    # --- STREAM vs GPU transfers ---------------------------------------
    res = gpu_vs_stream(core_counts=[0, 2, 4, 8, 12, 17])
    rows = [[int(n), f"{v/1e9:.2f} GB/s"]
            for n, v in zip(res["memcpy_bw"].x, res["memcpy_bw"].median)]
    print("Host->GPU copy bandwidth vs STREAM cores on the host:")
    print(render_table(["STREAM cores", "memcpy bandwidth"], rows))
    loss = (1 - res.observations["memcpy_bw_min_ratio"]) * 100
    print(f"\nThe GPU link starves exactly like the NIC does (fig 4b): "
          f"up to {loss:.0f}% of PCIe bandwidth lost to memory "
          "contention.")


if __name__ == "__main__":
    main()
