#!/usr/bin/env python
"""Quickstart: measure communication/computation interference in 30 lines.

Builds a two-node `henri` cluster (dual Xeon, 4 NUMA nodes, InfiniBand
EDR), measures ping-pong latency and bandwidth alone, then repeats the
measurement while STREAM TRIAD hammers the memory bus from every core —
the headline experiment of the paper (§4.2).

Run:  python examples/quickstart.py
"""

from repro import (
    Cluster, CommWorld, PingPong, SideBySideConfig, run_throughput_protocol,
)
from repro.core.placement import Placement
from repro.mpi.pingpong import BANDWIDTH_SIZE, LATENCY_SIZE


def main() -> None:
    # --- 1. A clean ping-pong, nothing else running -----------------------
    cluster = Cluster("henri", n_nodes=2)
    world = CommWorld(cluster, comm_placement="near")
    pingpong = PingPong(world)

    lat = pingpong.run(LATENCY_SIZE, reps=30)
    bw = pingpong.run(BANDWIDTH_SIZE, reps=5)
    print("idle machine:")
    print(f"  latency   : {lat.median_latency * 1e6:6.2f} us")
    print(f"  bandwidth : {bw.bandwidth / 1e9:6.2f} GB/s")

    # --- 2. Same measurement with 35 STREAM cores per node ----------------
    for size, label in ((LATENCY_SIZE, "latency"),
                        (BANDWIDTH_SIZE, "bandwidth")):
        cfg = SideBySideConfig(
            spec="henri",
            n_compute_cores=35,
            placement=Placement(data="near", comm_thread="far"),
            message_size=size,
            reps=8,
        )
        out = run_throughput_protocol(cfg)
        alone = out.comm_alone.median_latency
        together = out.comm_together.median_latency
        print(f"\n35 STREAM cores per node ({label} ping-pong):")
        if size == LATENCY_SIZE:
            print(f"  latency alone    : {alone * 1e6:6.2f} us")
            print(f"  latency together : {together * 1e6:6.2f} us "
                  f"({together / alone:.1f}x)")
        else:
            print(f"  bandwidth alone    : {size / alone / 1e9:6.2f} GB/s")
            print(f"  bandwidth together : {size / together / 1e9:6.2f} "
                  f"GB/s ({size / together / (size / alone) * 100:.0f}% "
                  "of nominal)")
        print(f"  STREAM per core  : "
              f"{out.compute_alone_bw / 1e9:.2f} GB/s alone -> "
              f"{out.compute_together_bw / 1e9:.2f} GB/s together")


if __name__ == "__main__":
    main()
