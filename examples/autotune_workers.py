#!/usr/bin/env python
"""The paper's §8 proposal, implemented: auto-selecting worker counts.

"As future works ... task-based runtime systems could select
(automatically) the optimal number of workers which reduces memory
contention and maximizes performances for the whole program execution."

Runs the §6 conjugate gradient twice — once with all 34 workers pinned
on, once under the stall-band autotuner — and compares execution time,
sending bandwidth and memory stalls.  The tuner sheds the workers whose
cycles were pure memory-queueing, freeing the communication path at no
compute cost.

Run:  python examples/autotune_workers.py
"""

from repro.core.report import render_table
from repro.runtime.apps import run_cg


def main() -> None:
    fixed = run_cg(n_workers=34, iterations=4)
    tuned = run_cg(n_workers=34, iterations=4, autotune=True)

    rows = [
        ["duration", f"{fixed.duration*1e3:.0f} ms",
         f"{tuned.duration*1e3:.0f} ms"],
        ["sending bandwidth", f"{fixed.sending_bandwidth/1e9:.2f} GB/s",
         f"{tuned.sending_bandwidth/1e9:.2f} GB/s"],
        ["memory stalls", f"{fixed.stall_fraction*100:.0f}%",
         f"{tuned.stall_fraction*100:.0f}%"],
    ]
    print("CG on 2 nodes, 34 workers available:")
    print(render_table(["metric", "fixed 34 workers", "autotuned"], rows))
    print(
        f"\nThe autotuner pauses workers whose cycles are pure memory\n"
        f"queueing (contention stalls), so communications gain "
        f"{(tuned.sending_bandwidth/fixed.sending_bandwidth-1)*100:.0f}% "
        f"bandwidth\nwhile the computation finishes in the same time "
        f"({tuned.duration/fixed.duration:.2f}x).")


if __name__ == "__main__":
    main()
