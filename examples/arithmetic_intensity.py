#!/usr/bin/env python
"""From memory-bound to CPU-bound: the tunable-intensity TRIAD (§4.5).

The paper's key diagnostic: repeat the TRIAD operation `cursor` times on
each element to raise arithmetic intensity without changing memory
traffic, then watch communication performance recover as the computation
stops saturating the memory bus.  On henri the boundary sits near
6 flop/B.

Run:  python examples/arithmetic_intensity.py
"""

from repro.core import experiments as E
from repro.core.report import render_table
from repro.kernels import intensity_of_cursor


def bar(fraction: float, width: int = 30) -> str:
    fraction = max(0.0, min(1.0, fraction))
    return "#" * round(fraction * width)


def main() -> None:
    cursors = [1, 4, 12, 24, 48, 72, 96, 144, 288, 480]
    result = E.fig7a(cursors=cursors, reps=5, elems=1_000_000)
    alone = result["comm_alone"].median[0]

    rows = []
    for cursor in cursors:
        intensity = intensity_of_cursor(cursor)
        lat = result["comm_together"].at(intensity)
        dur = result["compute_together"].at(intensity)
        rows.append([
            cursor,
            f"{intensity:.2f}",
            f"{lat * 1e6:.2f} us",
            f"{lat / alone:.2f}x",
            f"{dur * 1e3:.1f} ms",
            bar(alone / lat),
        ])
    print("Latency ping-pong beside 35 tunable-TRIAD cores "
          f"(alone: {alone * 1e6:.2f} us)")
    print(render_table(
        ["cursor", "flop/B", "latency", "vs alone", "compute", "recovery"],
        rows))
    ridge = result.observations.get("ridge_flop_per_byte")
    print(f"\nNetwork fully recovered above ~{ridge:.0f} flop/B "
          "(paper: memory pressure stops mattering past ~6 flop/B; "
          "recovery completes somewhat above the onset).")


if __name__ == "__main__":
    main()
