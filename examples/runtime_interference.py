#!/usr/bin/env python
"""Task-runtime interference: stack overhead and polling workers (§5).

1. Measures the latency overhead of sending through the StarPU-like
   runtime instead of plain MPI (§5.2: +38 us on henri).
2. Shows how data/thread NUMA placement moves runtime latency (§5.3).
3. Sweeps the worker busy-wait backoff and shows polling workers
   penalising communications (§5.4, Figure 9).

Run:  python examples/runtime_interference.py
"""

from repro.core import experiments as E
from repro.core.report import render_table


def main() -> None:
    # --- §5.2: software-stack overhead ---------------------------------
    res = E.runtime_overhead(reps=15)
    print("Runtime vs plain-MPI latency (4 B):")
    print(f"  plain MPI : {res.observations['plain_latency_s']*1e6:6.2f} us")
    print(f"  runtime   : {res.observations['runtime_latency_s']*1e6:6.2f} us")
    print(f"  overhead  : {res.observations['overhead_s']*1e6:6.2f} us "
          "(paper: +38 us on henri)\n")

    # --- §5.3: NUMA placement within the runtime -------------------------
    res = E.fig8(reps=12)
    rows = [[key.replace("_latency_s", "").replace("_", " "),
             f"{value*1e6:.2f} us"]
            for key, value in sorted(res.observations.items())]
    print("Runtime latency vs data/thread placement "
          "(close/far from the NIC):")
    print(render_table(["placement", "latency"], rows))
    print("  -> what matters most is data and comm thread sharing a "
          "NUMA node.\n")

    # --- §5.4: polling workers ---------------------------------------
    res = E.fig9(sizes=[4, 1024, 16384], reps=8)
    rows = []
    for key in ("backoff_2", "backoff_32", "backoff_10000", "paused"):
        series = res[key]
        rows.append([key] + [f"{v*1e6:.1f} us" for v in series.median])
    print("Runtime latency vs worker-polling backoff "
          "(columns: 4 B, 1 KB, 16 KB):")
    print(render_table(["workers", "4B", "1KB", "16KB"], rows))
    print("  -> aggressive polling (small backoff) hurts latency; a huge "
          "backoff behaves like paused workers.")


if __name__ == "__main__":
    main()
