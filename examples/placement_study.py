#!/usr/bin/env python
"""Placement study: reproduce the paper's Table 1 (§4.3).

Sweeps all four (data, communication thread) x (near, far from the NIC)
placements and prints how latency and bandwidth degrade as computing
cores are added — showing that a far comm thread suffers late-but-badly
on latency, and far data makes bandwidth collapse abruptly.

Run:  python examples/placement_study.py [--full]
"""

import argparse

from repro.core import experiments as E
from repro.core.report import render_table


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--full", action="store_true",
                        help="full core sweep (slower, smoother numbers)")
    args = parser.parse_args()

    core_counts = None if args.full else [0, 3, 5, 12, 20, 28, 35]
    reps = 8 if args.full else 5

    result = E.table1(core_counts=core_counts, reps=reps)
    rows = []
    for row in result.meta["rows"]:
        impact = row["latency_impact_from_cores"]
        rows.append([
            row["data"], row["comm_thread"],
            "never" if impact is None else f"{impact:.0f} cores",
            f'{row["latency_max_ratio"]:.2f}x',
            f'{(1 - row["bandwidth_min_ratio"]) * 100:.0f}%',
        ])
    print("Table 1 — impact of data and communication-thread placement")
    print(render_table(
        ["data", "comm thread", "latency impacted from",
         "latency worst", "bandwidth worst loss"], rows))
    print(
        "\nPaper's reading: near comm threads degrade early but mildly\n"
        "(plateau around 2 us); far comm threads degrade only once\n"
        "computing threads reach their socket, but then latency doubles.\n"
        "Far data makes the bandwidth drop abrupt instead of steady.")


if __name__ == "__main__":
    main()
