#!/usr/bin/env python
"""Collectives under interference (extension beyond the paper's scope).

The paper restricts itself to point-to-point ping-pongs; this example
asks its §4 question of *collective* operations: how much slower does an
allreduce get when every node also runs STREAM?

Run:  python examples/collectives_demo.py
"""

from repro.core.report import render_table
from repro.hardware import Cluster
from repro.kernels import run_kernel, triad_kernel
from repro.mpi import CommWorld
from repro.mpi.collectives import CollectiveContext


def run_case(op: str, size: int, n_nodes: int, stream_cores: int):
    world = CommWorld(Cluster("henri", n_nodes), comm_placement="near")
    ctx = CollectiveContext(world)
    runs = []
    for machine in world.cluster.machines:
        for core in range(stream_cores):
            runs.append(run_kernel(machine, core, triad_kernel(),
                                   data_numa=0, sweeps=None))
    record = ctx.run(op, size=size) if op == "allreduce" \
        else ctx.run(op, root=0, size=size)
    for r in runs:
        r.request_stop()
    world.sim.run()
    return record


def main() -> None:
    rows = []
    for op in ("bcast", "reduce", "allreduce"):
        for size in (1024, 8 << 20):
            quiet = run_case(op, size, n_nodes=4, stream_cores=0)
            loud = run_case(op, size, n_nodes=4, stream_cores=12)
            rows.append([
                op, f"{size} B", quiet.algorithm,
                f"{quiet.duration*1e6:.1f} us",
                f"{loud.duration*1e6:.1f} us",
                f"{loud.duration/quiet.duration:.2f}x",
            ])
    print("Collectives on 4 henri nodes, idle vs 12 STREAM cores/node:")
    print(render_table(
        ["op", "size", "algorithm", "idle", "contended", "slowdown"],
        rows))
    print("\nLarge collectives inherit the paper's §4 memory-contention "
          "penalty on every constituent transfer; small ones barely "
          "notice.")


if __name__ == "__main__":
    main()
