#!/usr/bin/env python
"""Real kernels: CG vs GEMM communication penalty (§6, Figure 10).

Runs distributed dense conjugate gradient and tiled GEMM on two simulated
nodes, sweeping the number of workers, and reports the sending bandwidth
(the §6 profiling metric) next to the fraction of cycles stalled on
memory — reproducing the paper's contrast: memory-bound CG loses up to
~90 % of its communication performance, compute-bound GEMM only ~20 %.

Run:  python examples/cg_vs_gemm.py
"""

from repro.core.report import render_table
from repro.runtime.apps import run_cg, run_gemm


def main() -> None:
    worker_counts = [1, 4, 8, 16, 24, 34]
    rows = []
    cg_peak = gemm_peak = 0.0
    results = []
    for nw in worker_counts:
        cg = run_cg(n_workers=nw)
        gemm = run_gemm(n_workers=nw)
        cg_peak = max(cg_peak, cg.sending_bandwidth)
        gemm_peak = max(gemm_peak, gemm.sending_bandwidth)
        results.append((nw, cg, gemm))

    for nw, cg, gemm in results:
        rows.append([
            nw,
            f"{cg.sending_bandwidth / cg_peak:.2f}",
            f"{cg.stall_fraction * 100:.0f}%",
            f"{gemm.sending_bandwidth / gemm_peak:.2f}",
            f"{gemm.stall_fraction * 100:.0f}%",
        ])
    print("Figure 10 — normalized sending bandwidth and memory stalls")
    print(render_table(
        ["workers", "CG send bw", "CG stalls", "GEMM send bw",
         "GEMM stalls"], rows))

    _, cg, gemm = results[-1]
    print(f"\nAt full worker count: CG loses "
          f"{(1 - cg.sending_bandwidth / cg_peak) * 100:.0f}% of its "
          f"sending bandwidth ({cg.stall_fraction*100:.0f}% memory "
          f"stalls); GEMM loses "
          f"{(1 - gemm.sending_bandwidth / gemm_peak) * 100:.0f}% "
          f"({gemm.stall_fraction*100:.0f}% stalls).")
    print("Paper: up to 90% loss for CG (70% stalls) vs ~20% for GEMM "
          "(20% stalls).")


if __name__ == "__main__":
    main()
